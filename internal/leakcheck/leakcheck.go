// Package leakcheck asserts that a test leaves no goroutines behind. It is
// the shared helper for the suites that exercise cancellation and
// close-during-query paths, where the failure mode is a worker, prefetch,
// or singleflight waiter wedged forever — invisible to assertions on
// results, fatal to a long-running server.
package leakcheck

import (
	"runtime"
	"runtime/pprof"
	"strings"
	"testing"
	"time"
)

// Check snapshots the goroutine count and registers a cleanup that polls
// (for up to five seconds, outlasting normal scheduler jitter) for the
// count to return to the baseline. On failure it dumps every goroutine
// stack, so the wedged one is identified directly in the test log.
//
// Call it FIRST in the test, before any servers or files are created, so
// everything the test starts is covered by the baseline.
func Check(t testing.TB) {
	t.Helper()
	base := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(5 * time.Second)
		var n int
		for {
			n = runtime.NumGoroutine()
			if n <= base {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(10 * time.Millisecond) //batlint:ignore ctxsleep poll interval in a test-only cleanup with no context to honor
		}
		var sb strings.Builder
		pprof.Lookup("goroutine").WriteTo(&sb, 1)
		t.Errorf("goroutine leak: %d goroutines at start, %d after cleanup wait; dump:\n%s",
			base, n, sb.String())
	})
}
