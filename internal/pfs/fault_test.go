package pfs

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestFaultyPermanent(t *testing.T) {
	f := &Faulty{
		Storage:    NewMem(),
		FailWrites: map[string]bool{"bad": true},
		FailOpens:  map[string]bool{"sealed": true},
	}
	if err := f.WriteFile("bad", nil); err == nil {
		t.Error("injected write should fail")
	} else if IsTransient(err) {
		t.Error("permanent fault must not be transient")
	}
	if err := f.WriteFile("good", []byte("x")); err != nil {
		t.Errorf("clean write failed: %v", err)
	}
	f.WriteFile("sealed", []byte("y"))
	if _, err := f.Open("sealed"); err == nil {
		t.Error("injected open should fail")
	}
	if _, err := f.Open("good"); err != nil {
		t.Errorf("clean open failed: %v", err)
	}
	if f.Injected() < 2 {
		t.Errorf("Injected() = %d, want >= 2", f.Injected())
	}
}

func TestFaultyFailFirstN(t *testing.T) {
	f := NewFaulty(NewMem(), FaultConfig{Seed: 1})
	f.FailNextWrites("a", 2)
	f.FailNextOpens("a", 1)
	for i := 0; i < 2; i++ {
		err := f.WriteFile("a", []byte("data"))
		if err == nil || !IsTransient(err) || !errors.Is(err, ErrInjected) {
			t.Fatalf("write %d: want transient injected error, got %v", i, err)
		}
	}
	if err := f.WriteFile("a", []byte("data")); err != nil {
		t.Fatalf("third write should pass: %v", err)
	}
	if _, err := f.Open("a"); err == nil || !IsTransient(err) {
		t.Fatalf("first open: want transient error, got %v", err)
	}
	if _, err := f.Open("a"); err != nil {
		t.Fatalf("second open should pass: %v", err)
	}
}

func TestFaultyTornWrite(t *testing.T) {
	mem := NewMem()
	f := NewFaulty(mem, FaultConfig{Seed: 7, TornWriteProb: 1, MaxConsecutive: 1})
	data := bytes.Repeat([]byte("payload!"), 64)
	err := f.WriteFile("t", data)
	if err == nil || !IsTransient(err) {
		t.Fatalf("torn write must report a transient error, got %v", err)
	}
	// The underlying store saw only a prefix.
	h, err := mem.Open("t")
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	if h.Size() >= int64(len(data)) {
		t.Errorf("torn write persisted %d bytes, want < %d", h.Size(), len(data))
	}
	// The streak cap lets the retry through.
	if err := f.WriteFile("t", data); err != nil {
		t.Fatalf("capped retry should pass: %v", err)
	}
}

func TestFaultyBitFlip(t *testing.T) {
	mem := NewMem()
	data := make([]byte, 1024)
	mem.WriteFile("x", data)
	f := NewFaulty(mem, FaultConfig{Seed: 3, BitFlipProb: 1})
	h, err := f.Open("x")
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	got := make([]byte, len(data))
	if _, err := h.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	diff := 0
	for i := range got {
		if got[i] != data[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Errorf("bit flip changed %d bytes, want exactly 1", diff)
	}
}

func TestFaultyMaxConsecutive(t *testing.T) {
	f := NewFaulty(NewMem(), FaultConfig{Seed: 9, WriteFailProb: 1, MaxConsecutive: 3})
	fails := 0
	for i := 0; i < 4; i++ {
		if err := f.WriteFile("n", []byte("v")); err != nil {
			fails++
		} else {
			break
		}
	}
	if fails != 3 {
		t.Errorf("saw %d consecutive faults before success, want 3", fails)
	}
}

// TestFaultyConcurrent exercises the injector from many goroutines; run
// under -race it proves the maps and generator are synchronized.
func TestFaultyConcurrent(t *testing.T) {
	f := NewFaulty(NewMem(), FaultConfig{
		Seed: 11, WriteFailProb: 0.3, OpenFailProb: 0.3,
		ReadFailProb: 0.2, BitFlipProb: 0.2, TornWriteProb: 0.1,
	})
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			name := string(rune('a' + g%4))
			f.FailNextWrites(name, 1)
			for i := 0; i < 50; i++ {
				f.WriteFile(name, []byte("data"))
				if h, err := f.Open(name); err == nil {
					buf := make([]byte, 4)
					h.ReadAt(buf, 0)
					h.Close()
				}
			}
		}(g)
	}
	wg.Wait()
	if f.Injected() == 0 {
		t.Error("no faults injected")
	}
}

func TestRetryMasksTransient(t *testing.T) {
	mem := NewMem()
	f := NewFaulty(mem, FaultConfig{Seed: 1})
	f.FailNextWrites("a", 3)
	f.FailNextOpens("a", 2)
	r := NewRetry(f, RetryConfig{MaxAttempts: 5, BaseDelay: time.Microsecond, Seed: 2})
	if err := r.WriteFile("a", []byte("hello")); err != nil {
		t.Fatalf("retry did not mask transient writes: %v", err)
	}
	h, err := r.Open("a")
	if err != nil {
		t.Fatalf("retry did not mask transient opens: %v", err)
	}
	defer h.Close()
	buf := make([]byte, 5)
	if _, err := h.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "hello" {
		t.Errorf("read back %q", buf)
	}
	if r.Retries() < 5 {
		t.Errorf("Retries() = %d, want >= 5", r.Retries())
	}
}

func TestRetryGivesUp(t *testing.T) {
	f := NewFaulty(NewMem(), FaultConfig{Seed: 1})
	f.FailNextWrites("a", 10)
	r := NewRetry(f, RetryConfig{MaxAttempts: 3, BaseDelay: time.Microsecond, Seed: 2})
	err := r.WriteFile("a", nil)
	if err == nil || !errors.Is(err, ErrInjected) {
		t.Fatalf("want injected error after exhausting attempts, got %v", err)
	}
}

func TestRetryDoesNotRetryPermanent(t *testing.T) {
	f := &Faulty{Storage: NewMem(), FailWrites: map[string]bool{"a": true}}
	r := NewRetry(f, RetryConfig{MaxAttempts: 5, BaseDelay: time.Microsecond})
	if err := r.WriteFile("a", nil); err == nil {
		t.Fatal("permanent fault must surface")
	}
	if f.Injected() != 1 {
		t.Errorf("permanent fault was attempted %d times, want 1", f.Injected())
	}
}

func TestRetryBackoffBounds(t *testing.T) {
	r := NewRetry(NewMem(), RetryConfig{
		BaseDelay: time.Millisecond, MaxDelay: 8 * time.Millisecond, Jitter: 0.5, Seed: 4,
	})
	for attempt := 0; attempt < 10; attempt++ {
		d := r.delay(attempt)
		if d <= 0 || d > 8*time.Millisecond {
			t.Errorf("delay(%d) = %v out of (0, 8ms]", attempt, d)
		}
	}
}

func TestRemove(t *testing.T) {
	for name, s := range backends(t) {
		t.Run(name, func(t *testing.T) {
			s.WriteFile("gone", []byte("x"))
			if err := s.Remove("gone"); err != nil {
				t.Fatal(err)
			}
			if _, err := s.Open("gone"); err == nil {
				t.Error("removed file still opens")
			}
			// Idempotent.
			if err := s.Remove("gone"); err != nil {
				t.Errorf("second remove errored: %v", err)
			}
		})
	}
}

func TestOSConcurrentSameName(t *testing.T) {
	// Concurrent writers to one name must never collide on temp files or
	// leave partial state: the final content is one writer's payload.
	s, err := NewOS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			payload := bytes.Repeat([]byte{byte('a' + g)}, 4096)
			for i := 0; i < 20; i++ {
				if err := s.WriteFile("shared", payload); err != nil {
					t.Errorf("writer %d: %v", g, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	h, err := s.Open("shared")
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	if h.Size() != 4096 {
		t.Fatalf("size %d", h.Size())
	}
	buf := make([]byte, 4096)
	if _, err := h.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(buf); i++ {
		if buf[i] != buf[0] {
			t.Fatalf("torn content at byte %d", i)
		}
	}
	names, _ := s.List()
	if len(names) != 1 || names[0] != "shared" {
		t.Errorf("List = %v", names)
	}
}

func TestOSStaleTmpCleanup(t *testing.T) {
	dir := t.TempDir()
	s, err := NewOS(dir)
	if err != nil {
		t.Fatal(err)
	}
	s.WriteFile("keep", []byte("x"))
	// Simulate a crash: a stray temp file appears in the directory.
	if err := writeRaw(dir, "keep.99.tmp", []byte("partial")); err != nil {
		t.Fatal(err)
	}
	s2, err := NewOS(dir)
	if err != nil {
		t.Fatal(err)
	}
	names, _ := s2.List()
	if len(names) != 1 || names[0] != "keep" {
		t.Errorf("List after reopen = %v", names)
	}
}
