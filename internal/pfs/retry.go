package pfs

import (
	"context"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// RetryConfig controls the retry decorator. The zero value gets sensible
// defaults: 4 attempts, 1 ms base delay doubling to a 100 ms cap, 50%
// jitter, and IsTransient as the retryable-error classifier.
type RetryConfig struct {
	// MaxAttempts is the total number of tries per operation (the first
	// attempt included).
	MaxAttempts int
	// BaseDelay is the backoff before the first retry; each further
	// retry doubles it up to MaxDelay (exponential backoff).
	BaseDelay time.Duration
	// MaxDelay caps the backoff.
	MaxDelay time.Duration
	// Jitter randomizes each delay downward by up to this fraction
	// [0,1], decorrelating retries from concurrent aggregators so they
	// do not hammer a recovering store in lockstep.
	Jitter float64
	// Seed makes the jitter sequence reproducible.
	Seed int64
	// Retryable classifies errors worth retrying; nil means IsTransient.
	// Permanent failures surface immediately.
	Retryable func(error) bool
}

func (c RetryConfig) withDefaults() RetryConfig {
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 4
	}
	if c.BaseDelay <= 0 {
		c.BaseDelay = time.Millisecond
	}
	if c.MaxDelay <= 0 {
		c.MaxDelay = 100 * time.Millisecond
	}
	if c.Jitter == 0 {
		c.Jitter = 0.5
	}
	if c.Retryable == nil {
		c.Retryable = IsTransient
	}
	return c
}

// Retry wraps a Storage so transient failures of writes, opens, and reads
// are masked by seeded exponential backoff with jitter. Safe for
// concurrent use.
type Retry struct {
	Storage
	cfg     RetryConfig
	mu      sync.Mutex
	rng     *rand.Rand
	retries atomic.Int64
}

// NewRetry wraps store with the given retry policy.
func NewRetry(store Storage, cfg RetryConfig) *Retry {
	cfg = cfg.withDefaults()
	return &Retry{Storage: store, cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Retries returns the number of retried operations so far.
func (r *Retry) Retries() int64 { return r.retries.Load() }

// delay computes the jittered backoff before retry attempt (0-based).
func (r *Retry) delay(attempt int) time.Duration {
	d := r.cfg.BaseDelay << uint(attempt)
	if d > r.cfg.MaxDelay || d <= 0 {
		d = r.cfg.MaxDelay
	}
	r.mu.Lock()
	f := r.rng.Float64()
	r.mu.Unlock()
	return d - time.Duration(float64(d)*r.cfg.Jitter*f)
}

// do runs op under the retry policy with no cancellation point.
func (r *Retry) do(op func() error) error {
	return r.doCtx(context.Background(), op)
}

// doCtx runs op under the retry policy. Backoff sleeps are interruptible:
// when ctx ends mid-backoff the wait aborts immediately and ctx.Err() is
// returned. Context errors from op itself are never retried — the caller
// asked to stop, so backing off and trying again would just delay the
// unwind.
func (r *Retry) doCtx(ctx context.Context, op func() error) error {
	var err error
	for attempt := 0; attempt < r.cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			if serr := SleepContext(ctx, r.delay(attempt-1)); serr != nil {
				return serr
			}
			r.retries.Add(1)
		}
		if err = op(); err == nil || !r.cfg.Retryable(err) {
			return err
		}
		if IsContextErr(err) || ctx.Err() != nil {
			return err
		}
	}
	return err
}

// WriteFile implements Storage with retries.
func (r *Retry) WriteFile(name string, data []byte) error {
	return r.do(func() error { return r.Storage.WriteFile(name, data) })
}

// Open implements Storage with retries; the returned file retries
// transient ReadAt failures under the same policy.
func (r *Retry) Open(name string) (File, error) {
	return r.OpenCtx(context.Background(), name)
}

// OpenCtx implements CtxOpener: the open and its backoff sleeps abort
// when ctx ends.
func (r *Retry) OpenCtx(ctx context.Context, name string) (File, error) {
	var f File
	err := r.doCtx(ctx, func() error {
		var err error
		f, err = OpenContext(ctx, r.Storage, name)
		return err
	})
	if err != nil {
		return nil, err
	}
	return &retryFile{File: f, r: r}, nil
}

type retryFile struct {
	File
	r *Retry
}

func (f *retryFile) ReadAt(p []byte, off int64) (int, error) {
	return f.ReadAtCtx(context.Background(), p, off)
}

// ReadAtCtx implements CtxReaderAt with the same retry policy.
func (f *retryFile) ReadAtCtx(ctx context.Context, p []byte, off int64) (int, error) {
	var n int
	err := f.r.doCtx(ctx, func() error {
		var err error
		n, err = ReadAtContext(ctx, f.File, p, off)
		return err
	})
	return n, err
}
