// Package pfs provides the storage backends the write/read pipelines run
// against: a real directory on the local filesystem (full-fidelity runs,
// the visualization benchmarks) and an in-memory store (tests and
// in-transit use). Both count files and bytes so benchmarks can report
// what a run produced.
package pfs

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"libbat/internal/obs"
)

// File is an open file handle supporting random-access reads.
type File interface {
	io.ReaderAt
	io.Closer
	Size() int64
}

// Storage is a flat namespace of immutable files.
type Storage interface {
	// WriteFile atomically creates (or replaces) a file.
	WriteFile(name string, data []byte) error
	// Open opens a file for random-access reading.
	Open(name string) (File, error)
	// Remove deletes a file. Removing a file that does not exist is not
	// an error, so cleanup paths can call it unconditionally.
	Remove(name string) error
	// List returns all file names, sorted.
	List() ([]string, error)
	// Stats reports cumulative write traffic.
	Stats() Stats
}

// Stats counts storage traffic.
type Stats struct {
	FilesWritten int64
	BytesWritten int64
}

// OS stores files under a root directory on the local filesystem.
type OS struct {
	root   string
	files  atomic.Int64
	bytes  atomic.Int64
	tmpSeq atomic.Int64
	sync   bool
}

// NewOS creates (if needed) and wraps a directory. Temp files left behind
// by a crashed writer are removed; they were never visible through List or
// Open-by-dataset-name, so this only reclaims space.
func NewOS(root string) (*OS, error) {
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, err
	}
	if ents, err := os.ReadDir(root); err == nil {
		for _, e := range ents {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".tmp") {
				os.Remove(filepath.Join(root, e.Name()))
			}
		}
	}
	return &OS{root: root}, nil
}

// SetSync enables fsync-before-rename on every write, making the atomic
// temp-file-then-rename sequence durable across power loss (at a
// per-file latency cost). Off by default: benchmarks and tests only need
// crash atomicity, which the rename alone provides.
func (s *OS) SetSync(sync bool) { s.sync = sync }

// Root returns the backing directory.
func (s *OS) Root() string { return s.root }

func (s *OS) path(name string) (string, error) {
	if name == "" || strings.Contains(name, "/") || strings.Contains(name, "..") {
		return "", fmt.Errorf("pfs: invalid file name %q", name)
	}
	return filepath.Join(s.root, name), nil
}

// WriteFile implements Storage: write to a uniquely named temp file, then
// rename into place. A crash at any point leaves either the old file or
// the new one visible, never a torn mixture — concurrent writers cannot
// collide on the temp name because each write draws a fresh sequence
// number.
func (s *OS) WriteFile(name string, data []byte) error {
	p, err := s.path(name)
	if err != nil {
		return err
	}
	tmp := fmt.Sprintf("%s.%d.tmp", p, s.tmpSeq.Add(1))
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if s.sync {
		if err := f.Sync(); err != nil {
			f.Close()
			os.Remove(tmp)
			return err
		}
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, p); err != nil {
		os.Remove(tmp)
		return err
	}
	s.files.Add(1)
	s.bytes.Add(int64(len(data)))
	return nil
}

// Remove implements Storage.
func (s *OS) Remove(name string) error {
	p, err := s.path(name)
	if err != nil {
		return err
	}
	if err := os.Remove(p); err != nil && !os.IsNotExist(err) {
		return err
	}
	return nil
}

type osFile struct {
	*os.File
	size int64
}

func (f *osFile) Size() int64 { return f.size }

// Open implements Storage.
func (s *OS) Open(name string) (File, error) {
	p, err := s.path(name)
	if err != nil {
		return nil, err
	}
	fh, err := os.Open(p)
	if err != nil {
		return nil, err
	}
	st, err := fh.Stat()
	if err != nil {
		fh.Close()
		return nil, err
	}
	return &osFile{File: fh, size: st.Size()}, nil
}

// List implements Storage.
func (s *OS) List() ([]string, error) {
	ents, err := os.ReadDir(s.root)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		if !e.IsDir() && !strings.HasSuffix(e.Name(), ".tmp") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// Stats implements Storage.
func (s *OS) Stats() Stats {
	return Stats{FilesWritten: s.files.Load(), BytesWritten: s.bytes.Load()}
}

// Mem is an in-memory Storage safe for concurrent use.
type Mem struct {
	mu    sync.RWMutex
	files map[string][]byte
	stats Stats
}

// NewMem returns an empty in-memory store.
func NewMem() *Mem {
	return &Mem{files: make(map[string][]byte)}
}

// WriteFile implements Storage.
func (m *Mem) WriteFile(name string, data []byte) error {
	if name == "" {
		return fmt.Errorf("pfs: invalid file name %q", name)
	}
	cp := append([]byte(nil), data...)
	m.mu.Lock()
	m.files[name] = cp
	m.stats.FilesWritten++
	m.stats.BytesWritten += int64(len(data))
	m.mu.Unlock()
	return nil
}

// Remove implements Storage.
func (m *Mem) Remove(name string) error {
	m.mu.Lock()
	delete(m.files, name)
	m.mu.Unlock()
	return nil
}

type memFile struct{ data []byte }

func (f *memFile) ReadAt(p []byte, off int64) (int, error) {
	if off >= int64(len(f.data)) {
		return 0, io.EOF
	}
	n := copy(p, f.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (f *memFile) Close() error { return nil }
func (f *memFile) Size() int64  { return int64(len(f.data)) }

// Open implements Storage.
func (m *Mem) Open(name string) (File, error) {
	m.mu.RLock()
	data, ok := m.files[name]
	m.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("pfs: %q: %w", name, os.ErrNotExist)
	}
	return &memFile{data: data}, nil
}

// List implements Storage.
func (m *Mem) List() ([]string, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	names := make([]string, 0, len(m.files))
	for n := range m.files {
		names = append(names, n)
	}
	sort.Strings(names)
	return names, nil
}

// Stats implements Storage.
func (m *Mem) Stats() Stats {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.stats
}

// Observe wraps a Storage so every write, open, and read is counted on the
// collector: per-file call/byte counters plus a write-size histogram. With
// a nil collector the storage is returned unwrapped (zero overhead).
func Observe(s Storage, c *obs.Collector) Storage {
	if c == nil {
		return s
	}
	return &observed{Storage: s, col: c}
}

type observed struct {
	Storage
	col *obs.Collector
}

func (o *observed) WriteFile(name string, data []byte) error {
	err := o.Storage.WriteFile(name, data)
	if err == nil {
		f := obs.L("file", name)
		o.col.Add("pfs_write_calls_total", 1, f)
		o.col.Add("pfs_write_bytes_total", int64(len(data)), f)
		o.col.Histogram("pfs_write_size_bytes", obs.DefSizeBuckets()).Observe(float64(len(data)))
	}
	return err
}

func (o *observed) Open(name string) (File, error) {
	return o.OpenCtx(context.Background(), name)
}

// OpenCtx implements CtxOpener, so observing a ctx-aware storage does not
// hide its cancellation support from callers.
func (o *observed) OpenCtx(ctx context.Context, name string) (File, error) {
	f, err := OpenContext(ctx, o.Storage, name)
	if err != nil {
		return nil, err
	}
	lab := obs.L("file", name)
	o.col.Add("pfs_open_calls_total", 1, lab)
	return &observedFile{
		File:  f,
		calls: o.col.Counter("pfs_read_calls_total", lab),
		bytes: o.col.Counter("pfs_read_bytes_total", lab),
	}, nil
}

type observedFile struct {
	File
	calls, bytes *obs.Counter
}

func (f *observedFile) ReadAt(p []byte, off int64) (int, error) {
	return f.ReadAtCtx(context.Background(), p, off)
}

// ReadAtCtx implements CtxReaderAt by forwarding to the wrapped file.
func (f *observedFile) ReadAtCtx(ctx context.Context, p []byte, off int64) (int, error) {
	n, err := ReadAtContext(ctx, f.File, p, off)
	f.calls.Add(1)
	f.bytes.Add(int64(n))
	return n, err
}
