// Fault injection for pipeline robustness tests: a seeded, concurrency-safe
// Storage decorator that produces the failure modes a parallel filesystem
// exhibits under load — transient and permanent operation failures, torn
// (partially persisted) writes, silent read corruption, seeded per-op
// latency, and indefinitely stalled operations (the hung-mount case) that
// unblock only on context cancellation or an explicit release.
package pfs

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// ErrInjected is returned (wrapped) by Faulty for every injected fault.
var ErrInjected = errors.New("pfs: injected fault")

// transientError marks an error as retryable.
type transientError struct{ err error }

func (e *transientError) Error() string { return e.err.Error() + " (transient)" }
func (e *transientError) Unwrap() error { return e.err }

// Transient wraps err so IsTransient reports true. Retry decorators use
// this classification to distinguish faults worth retrying from permanent
// failures that must surface immediately.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &transientError{err}
}

// IsTransient reports whether err is marked retryable.
func IsTransient(err error) bool {
	var t *transientError
	return errors.As(err, &t)
}

// FaultConfig configures probabilistic fault injection. Probabilities are
// in [0,1] and rolled independently per operation from the injector's
// seeded generator.
type FaultConfig struct {
	// Seed makes the fault schedule reproducible.
	Seed int64
	// WriteFailProb is the chance a WriteFile fails (transiently) without
	// touching the underlying storage.
	WriteFailProb float64
	// TornWriteProb is the chance a WriteFile persists only a prefix of
	// the data before failing transiently — the corruption a non-atomic
	// store would expose and checksums must catch.
	TornWriteProb float64
	// OpenFailProb is the chance an Open fails transiently.
	OpenFailProb float64
	// ReadFailProb is the chance a ReadAt on an opened file fails
	// transiently.
	ReadFailProb float64
	// BitFlipProb is the chance a ReadAt silently flips one random bit in
	// the returned data. Bit flips are not errors; only checksum
	// verification in the formats can detect them.
	BitFlipProb float64
	// MaxConsecutive caps the consecutive probabilistic faults injected
	// per (operation, file); after the cap the next attempt is let
	// through. 0 means uncapped. A retry policy with more attempts than
	// this cap is guaranteed to mask every probabilistic fault, which
	// keeps seeded chaos tests deterministic.
	MaxConsecutive int

	// Latency injection: with probability *DelayProb the operation sleeps
	// a seeded uniform duration in (0, *Delay] before proceeding. Delays
	// are not faults (the operation still succeeds) and do not count
	// toward MaxConsecutive; on the context-aware paths the sleep aborts
	// when the caller's context ends.
	ReadDelayProb  float64
	ReadDelay      time.Duration
	OpenDelayProb  float64
	OpenDelay      time.Duration
	WriteDelayProb float64
	WriteDelay     time.Duration
}

// Faulty wraps a Storage and injects faults: permanent per-name failures
// (the FailWrites/FailOpens maps), deterministic fail-first-N transient
// faults, and the probabilistic faults of FaultConfig. All methods are
// safe for concurrent use by aggregator goroutines.
type Faulty struct {
	Storage
	// FailWrites and FailOpens name files whose writes/opens fail
	// permanently (never retryable). They may be set at construction;
	// use FailWritesPermanently/FailOpensPermanently to add names once
	// the injector is shared between goroutines.
	FailWrites map[string]bool
	FailOpens  map[string]bool

	mu         sync.Mutex
	cfg        FaultConfig
	rng        *rand.Rand
	nextWrites map[string]int // remaining scheduled transient write faults
	nextOpens  map[string]int
	streak     map[string]int // consecutive probabilistic faults per op:name
	injected   int64
	delays     int64
	stalls     int64
	stallReads map[string]bool
	stallOpens map[string]bool
	stallCh    chan struct{} // closed by ReleaseStalls; nil until first Stall*
}

// NewFaulty wraps store with a seeded fault injector.
func NewFaulty(store Storage, cfg FaultConfig) *Faulty {
	return &Faulty{Storage: store, cfg: cfg}
}

// locked returns the generator, initializing lazily so zero-value Faulty
// literals (permanent-fault maps only) keep working. Callers hold f.mu.
func (f *Faulty) gen() *rand.Rand {
	if f.rng == nil {
		f.rng = rand.New(rand.NewSource(f.cfg.Seed))
	}
	return f.rng
}

// roll draws one probability check. Callers hold f.mu.
func (f *Faulty) roll(p float64) bool {
	return p > 0 && f.gen().Float64() < p
}

// allowFault applies the MaxConsecutive cap for the (operation, file) key
// and updates the streak. Callers hold f.mu.
func (f *Faulty) allowFault(key string, fault bool) bool {
	if f.streak == nil {
		f.streak = make(map[string]int)
	}
	if fault && f.cfg.MaxConsecutive > 0 && f.streak[key] >= f.cfg.MaxConsecutive {
		fault = false
	}
	if fault {
		f.streak[key]++
	} else {
		f.streak[key] = 0
	}
	return fault
}

// FailNextWrites schedules the next n writes of name to fail transiently.
func (f *Faulty) FailNextWrites(name string, n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.nextWrites == nil {
		f.nextWrites = make(map[string]int)
	}
	f.nextWrites[name] = n
}

// FailNextOpens schedules the next n opens of name to fail transiently.
func (f *Faulty) FailNextOpens(name string, n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.nextOpens == nil {
		f.nextOpens = make(map[string]int)
	}
	f.nextOpens[name] = n
}

// FailWritesPermanently marks name so every write of it fails.
func (f *Faulty) FailWritesPermanently(name string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.FailWrites == nil {
		f.FailWrites = make(map[string]bool)
	}
	f.FailWrites[name] = true
}

// FailOpensPermanently marks name so every open of it fails.
func (f *Faulty) FailOpensPermanently(name string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.FailOpens == nil {
		f.FailOpens = make(map[string]bool)
	}
	f.FailOpens[name] = true
}

// Injected returns the number of faults injected so far (all kinds,
// including silent bit flips and stalls, excluding latency delays).
func (f *Faulty) Injected() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.injected
}

// Delays returns the number of latency delays injected so far.
func (f *Faulty) Delays() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.delays
}

// Stalled returns the number of operations that entered a stall so far
// (whether they were later released or canceled).
func (f *Faulty) Stalled() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stalls
}

// StallReads marks name so every ReadAt of it blocks indefinitely — the
// hung-mount failure mode. A stalled read unblocks only when the caller's
// context ends (returning ctx.Err()) or ReleaseStalls is called (the read
// then proceeds normally). Context-free ReadAt calls on a stalled file
// block until release.
func (f *Faulty) StallReads(name string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.stallReads == nil {
		f.stallReads = make(map[string]bool)
	}
	f.stallReads[name] = true
	f.armStall()
}

// StallOpens marks name so every Open of it blocks, with the same
// semantics as StallReads.
func (f *Faulty) StallOpens(name string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.stallOpens == nil {
		f.stallOpens = make(map[string]bool)
	}
	f.stallOpens[name] = true
	f.armStall()
}

// armStall ensures the release channel exists. Callers hold f.mu.
func (f *Faulty) armStall() {
	if f.stallCh == nil {
		f.stallCh = make(chan struct{})
	}
}

// ReleaseStalls clears every stall mark and unblocks all currently
// stalled operations; they proceed against the underlying storage as if
// the mount recovered.
func (f *Faulty) ReleaseStalls() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.stallReads = nil
	f.stallOpens = nil
	if f.stallCh != nil {
		close(f.stallCh)
		f.stallCh = nil
	}
}

// maybeStall blocks if name is stall-marked for the given op kind,
// returning ctx.Err() if the context ends first and nil once released.
func (f *Faulty) maybeStall(ctx context.Context, kind, name string) error {
	f.mu.Lock()
	var stalled bool
	switch kind {
	case "read":
		stalled = f.stallReads[name]
	case "open":
		stalled = f.stallOpens[name]
	}
	ch := f.stallCh
	if stalled {
		f.injected++
		f.stalls++
	}
	f.mu.Unlock()
	if !stalled {
		return nil
	}
	select {
	case <-ch:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// maybeDelay rolls the latency injection for one operation and sleeps
// (interruptibly) if it hits.
func (f *Faulty) maybeDelay(ctx context.Context, prob float64, max time.Duration) error {
	f.mu.Lock()
	var d time.Duration
	if max > 0 && f.roll(prob) {
		d = 1 + time.Duration(f.gen().Float64()*float64(max-1))
		f.delays++
	}
	f.mu.Unlock()
	if d <= 0 {
		return nil
	}
	return SleepContext(ctx, d)
}

// WriteFile implements Storage. Write delays are bounded sleeps (the
// write pipeline carries no context), so WriteDelay keeps them finite.
func (f *Faulty) WriteFile(name string, data []byte) error {
	f.maybeDelay(context.Background(), f.cfg.WriteDelayProb, f.cfg.WriteDelay)
	f.mu.Lock()
	if f.FailWrites[name] {
		f.injected++
		f.mu.Unlock()
		return fmt.Errorf("%w: write %s", ErrInjected, name)
	}
	if n := f.nextWrites[name]; n > 0 {
		f.nextWrites[name] = n - 1
		f.injected++
		f.mu.Unlock()
		return Transient(fmt.Errorf("%w: write %s", ErrInjected, name))
	}
	torn := f.allowFault("torn:"+name, f.roll(f.cfg.TornWriteProb))
	fail := torn
	if !torn {
		fail = f.allowFault("write:"+name, f.roll(f.cfg.WriteFailProb))
	}
	var prefix int
	if torn && len(data) > 0 {
		prefix = f.gen().Intn(len(data))
	}
	if fail {
		f.injected++
	}
	f.mu.Unlock()

	if torn {
		// Persist a prefix so the damaged state is visible to readers
		// that race the retry, then report the failure.
		f.Storage.WriteFile(name, data[:prefix])
		return Transient(fmt.Errorf("%w: torn write %s (%d of %d bytes)", ErrInjected, name, prefix, len(data)))
	}
	if fail {
		return Transient(fmt.Errorf("%w: write %s", ErrInjected, name))
	}
	return f.Storage.WriteFile(name, data)
}

// Open implements Storage. An open of a stall-marked name blocks until
// ReleaseStalls; use OpenCtx for a cancelable open.
func (f *Faulty) Open(name string) (File, error) {
	return f.OpenCtx(context.Background(), name)
}

// OpenCtx implements CtxOpener: stalls and injected delays abort with
// ctx.Err() when ctx ends.
func (f *Faulty) OpenCtx(ctx context.Context, name string) (File, error) {
	if err := f.maybeStall(ctx, "open", name); err != nil {
		return nil, err
	}
	if err := f.maybeDelay(ctx, f.cfg.OpenDelayProb, f.cfg.OpenDelay); err != nil {
		return nil, err
	}
	f.mu.Lock()
	if f.FailOpens[name] {
		f.injected++
		f.mu.Unlock()
		return nil, fmt.Errorf("%w: open %s", ErrInjected, name)
	}
	if n := f.nextOpens[name]; n > 0 {
		f.nextOpens[name] = n - 1
		f.injected++
		f.mu.Unlock()
		return nil, Transient(fmt.Errorf("%w: open %s", ErrInjected, name))
	}
	fail := f.allowFault("open:"+name, f.roll(f.cfg.OpenFailProb))
	if fail {
		f.injected++
	}
	f.mu.Unlock()
	if fail {
		return nil, Transient(fmt.Errorf("%w: open %s", ErrInjected, name))
	}
	h, err := OpenContext(ctx, f.Storage, name)
	if err != nil {
		return nil, err
	}
	// Always wrap: read stalls and delays may be configured after the
	// file is opened (StallReads mid-test is the hung-mount scenario).
	return &faultyFile{File: h, f: f, name: name}, nil
}

// faultyFile injects read faults and silent bit flips.
type faultyFile struct {
	File
	f    *Faulty
	name string
}

func (ff *faultyFile) ReadAt(p []byte, off int64) (int, error) {
	return ff.ReadAtCtx(context.Background(), p, off)
}

// ReadAtCtx implements CtxReaderAt: a stalled or delayed read aborts with
// ctx.Err() when ctx ends, which is what lets a deadline bound a query
// over a hung mount.
func (ff *faultyFile) ReadAtCtx(ctx context.Context, p []byte, off int64) (int, error) {
	f := ff.f
	if err := f.maybeStall(ctx, "read", ff.name); err != nil {
		return 0, err
	}
	if err := f.maybeDelay(ctx, f.cfg.ReadDelayProb, f.cfg.ReadDelay); err != nil {
		return 0, err
	}
	f.mu.Lock()
	fail := f.allowFault("read:"+ff.name, f.roll(f.cfg.ReadFailProb))
	flip := !fail && f.roll(f.cfg.BitFlipProb)
	var flipAt int
	var flipBit uint
	if flip && len(p) > 0 {
		flipAt = f.gen().Intn(len(p))
		flipBit = uint(f.gen().Intn(8))
	}
	if fail || flip {
		f.injected++
	}
	f.mu.Unlock()
	if fail {
		return 0, Transient(fmt.Errorf("%w: read %s at %d", ErrInjected, ff.name, off))
	}
	n, err := ReadAtContext(ctx, ff.File, p, off)
	if flip && n > flipAt {
		p[flipAt] ^= 1 << flipBit
	}
	return n, err
}
