// Fault injection for pipeline robustness tests: a seeded, concurrency-safe
// Storage decorator that produces the failure modes a parallel filesystem
// exhibits under load — transient and permanent operation failures, torn
// (partially persisted) writes, and silent read corruption.
package pfs

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
)

// ErrInjected is returned (wrapped) by Faulty for every injected fault.
var ErrInjected = errors.New("pfs: injected fault")

// transientError marks an error as retryable.
type transientError struct{ err error }

func (e *transientError) Error() string { return e.err.Error() + " (transient)" }
func (e *transientError) Unwrap() error { return e.err }

// Transient wraps err so IsTransient reports true. Retry decorators use
// this classification to distinguish faults worth retrying from permanent
// failures that must surface immediately.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &transientError{err}
}

// IsTransient reports whether err is marked retryable.
func IsTransient(err error) bool {
	var t *transientError
	return errors.As(err, &t)
}

// FaultConfig configures probabilistic fault injection. Probabilities are
// in [0,1] and rolled independently per operation from the injector's
// seeded generator.
type FaultConfig struct {
	// Seed makes the fault schedule reproducible.
	Seed int64
	// WriteFailProb is the chance a WriteFile fails (transiently) without
	// touching the underlying storage.
	WriteFailProb float64
	// TornWriteProb is the chance a WriteFile persists only a prefix of
	// the data before failing transiently — the corruption a non-atomic
	// store would expose and checksums must catch.
	TornWriteProb float64
	// OpenFailProb is the chance an Open fails transiently.
	OpenFailProb float64
	// ReadFailProb is the chance a ReadAt on an opened file fails
	// transiently.
	ReadFailProb float64
	// BitFlipProb is the chance a ReadAt silently flips one random bit in
	// the returned data. Bit flips are not errors; only checksum
	// verification in the formats can detect them.
	BitFlipProb float64
	// MaxConsecutive caps the consecutive probabilistic faults injected
	// per (operation, file); after the cap the next attempt is let
	// through. 0 means uncapped. A retry policy with more attempts than
	// this cap is guaranteed to mask every probabilistic fault, which
	// keeps seeded chaos tests deterministic.
	MaxConsecutive int
}

// Faulty wraps a Storage and injects faults: permanent per-name failures
// (the FailWrites/FailOpens maps), deterministic fail-first-N transient
// faults, and the probabilistic faults of FaultConfig. All methods are
// safe for concurrent use by aggregator goroutines.
type Faulty struct {
	Storage
	// FailWrites and FailOpens name files whose writes/opens fail
	// permanently (never retryable). They may be set at construction;
	// use FailWritesPermanently/FailOpensPermanently to add names once
	// the injector is shared between goroutines.
	FailWrites map[string]bool
	FailOpens  map[string]bool

	mu         sync.Mutex
	cfg        FaultConfig
	rng        *rand.Rand
	nextWrites map[string]int // remaining scheduled transient write faults
	nextOpens  map[string]int
	streak     map[string]int // consecutive probabilistic faults per op:name
	injected   int64
}

// NewFaulty wraps store with a seeded fault injector.
func NewFaulty(store Storage, cfg FaultConfig) *Faulty {
	return &Faulty{Storage: store, cfg: cfg}
}

// locked returns the generator, initializing lazily so zero-value Faulty
// literals (permanent-fault maps only) keep working. Callers hold f.mu.
func (f *Faulty) gen() *rand.Rand {
	if f.rng == nil {
		f.rng = rand.New(rand.NewSource(f.cfg.Seed))
	}
	return f.rng
}

// roll draws one probability check. Callers hold f.mu.
func (f *Faulty) roll(p float64) bool {
	return p > 0 && f.gen().Float64() < p
}

// allowFault applies the MaxConsecutive cap for the (operation, file) key
// and updates the streak. Callers hold f.mu.
func (f *Faulty) allowFault(key string, fault bool) bool {
	if f.streak == nil {
		f.streak = make(map[string]int)
	}
	if fault && f.cfg.MaxConsecutive > 0 && f.streak[key] >= f.cfg.MaxConsecutive {
		fault = false
	}
	if fault {
		f.streak[key]++
	} else {
		f.streak[key] = 0
	}
	return fault
}

// FailNextWrites schedules the next n writes of name to fail transiently.
func (f *Faulty) FailNextWrites(name string, n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.nextWrites == nil {
		f.nextWrites = make(map[string]int)
	}
	f.nextWrites[name] = n
}

// FailNextOpens schedules the next n opens of name to fail transiently.
func (f *Faulty) FailNextOpens(name string, n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.nextOpens == nil {
		f.nextOpens = make(map[string]int)
	}
	f.nextOpens[name] = n
}

// FailWritesPermanently marks name so every write of it fails.
func (f *Faulty) FailWritesPermanently(name string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.FailWrites == nil {
		f.FailWrites = make(map[string]bool)
	}
	f.FailWrites[name] = true
}

// FailOpensPermanently marks name so every open of it fails.
func (f *Faulty) FailOpensPermanently(name string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.FailOpens == nil {
		f.FailOpens = make(map[string]bool)
	}
	f.FailOpens[name] = true
}

// Injected returns the number of faults injected so far (all kinds,
// including silent bit flips).
func (f *Faulty) Injected() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.injected
}

// WriteFile implements Storage.
func (f *Faulty) WriteFile(name string, data []byte) error {
	f.mu.Lock()
	if f.FailWrites[name] {
		f.injected++
		f.mu.Unlock()
		return fmt.Errorf("%w: write %s", ErrInjected, name)
	}
	if n := f.nextWrites[name]; n > 0 {
		f.nextWrites[name] = n - 1
		f.injected++
		f.mu.Unlock()
		return Transient(fmt.Errorf("%w: write %s", ErrInjected, name))
	}
	torn := f.allowFault("torn:"+name, f.roll(f.cfg.TornWriteProb))
	fail := torn
	if !torn {
		fail = f.allowFault("write:"+name, f.roll(f.cfg.WriteFailProb))
	}
	var prefix int
	if torn && len(data) > 0 {
		prefix = f.gen().Intn(len(data))
	}
	if fail {
		f.injected++
	}
	f.mu.Unlock()

	if torn {
		// Persist a prefix so the damaged state is visible to readers
		// that race the retry, then report the failure.
		f.Storage.WriteFile(name, data[:prefix])
		return Transient(fmt.Errorf("%w: torn write %s (%d of %d bytes)", ErrInjected, name, prefix, len(data)))
	}
	if fail {
		return Transient(fmt.Errorf("%w: write %s", ErrInjected, name))
	}
	return f.Storage.WriteFile(name, data)
}

// Open implements Storage.
func (f *Faulty) Open(name string) (File, error) {
	f.mu.Lock()
	if f.FailOpens[name] {
		f.injected++
		f.mu.Unlock()
		return nil, fmt.Errorf("%w: open %s", ErrInjected, name)
	}
	if n := f.nextOpens[name]; n > 0 {
		f.nextOpens[name] = n - 1
		f.injected++
		f.mu.Unlock()
		return nil, Transient(fmt.Errorf("%w: open %s", ErrInjected, name))
	}
	fail := f.allowFault("open:"+name, f.roll(f.cfg.OpenFailProb))
	if fail {
		f.injected++
	}
	f.mu.Unlock()
	if fail {
		return nil, Transient(fmt.Errorf("%w: open %s", ErrInjected, name))
	}
	h, err := f.Storage.Open(name)
	if err != nil {
		return nil, err
	}
	if f.cfg.ReadFailProb > 0 || f.cfg.BitFlipProb > 0 {
		return &faultyFile{File: h, f: f, name: name}, nil
	}
	return h, nil
}

// faultyFile injects read faults and silent bit flips.
type faultyFile struct {
	File
	f    *Faulty
	name string
}

func (ff *faultyFile) ReadAt(p []byte, off int64) (int, error) {
	f := ff.f
	f.mu.Lock()
	fail := f.allowFault("read:"+ff.name, f.roll(f.cfg.ReadFailProb))
	flip := !fail && f.roll(f.cfg.BitFlipProb)
	var flipAt int
	var flipBit uint
	if flip && len(p) > 0 {
		flipAt = f.gen().Intn(len(p))
		flipBit = uint(f.gen().Intn(8))
	}
	if fail || flip {
		f.injected++
	}
	f.mu.Unlock()
	if fail {
		return 0, Transient(fmt.Errorf("%w: read %s at %d", ErrInjected, ff.name, off))
	}
	n, err := ff.File.ReadAt(p, off)
	if flip && n > flipAt {
		p[flipAt] ^= 1 << flipBit
	}
	return n, err
}
