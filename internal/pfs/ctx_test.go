package pfs

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestRetryBackoffCancel is the regression test for the uninterruptible
// backoff bug: a huge BaseDelay would formerly block do() in time.Sleep
// regardless of cancellation. With the timer-with-context select, a
// cancel mid-backoff must abort promptly.
func TestRetryBackoffCancel(t *testing.T) {
	mem := NewMem()
	mem.WriteFile("a", []byte("x"))
	fau := NewFaulty(mem, FaultConfig{})
	fau.FailNextOpens("a", 100) // keep every attempt failing transiently
	r := NewRetry(fau, RetryConfig{
		MaxAttempts: 10,
		BaseDelay:   time.Hour, // without interruption the test would hang
		MaxDelay:    time.Hour,
	})

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	start := time.Now()
	go func() {
		_, err := r.OpenCtx(ctx, "a")
		done <- err
	}()
	time.Sleep(20 * time.Millisecond) // let it reach the backoff sleep
	cancel()

	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("OpenCtx = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancellation did not abort the backoff sleep")
	}
	if el := time.Since(start); el > 5*time.Second {
		t.Fatalf("backoff abort took %v, want prompt return", el)
	}
}

// TestRetryNoRetryAfterContextErr: a context error from the operation
// itself must surface immediately even if the classifier would retry it.
func TestRetryNoRetryAfterContextErr(t *testing.T) {
	r := NewRetry(NewMem(), RetryConfig{
		MaxAttempts: 5,
		BaseDelay:   time.Millisecond,
		Retryable:   func(error) bool { return true }, // retry everything
	})
	calls := 0
	err := r.doCtx(context.Background(), func() error {
		calls++
		return context.DeadlineExceeded
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("doCtx = %v, want DeadlineExceeded", err)
	}
	if calls != 1 {
		t.Fatalf("op called %d times, want 1 (context errors are not retryable)", calls)
	}
}

// TestFaultyStallRead: a stalled read blocks until the context deadline,
// returns ctx.Err(), and proceeds normally once released.
func TestFaultyStallRead(t *testing.T) {
	mem := NewMem()
	mem.WriteFile("leaf", []byte("hello world"))
	fau := NewFaulty(mem, FaultConfig{})
	f, err := fau.Open("leaf")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	fau.StallReads("leaf")
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	buf := make([]byte, 5)
	start := time.Now()
	_, err = ReadAtContext(ctx, f, buf, 0)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("stalled read = %v, want DeadlineExceeded", err)
	}
	if el := time.Since(start); el > 5*time.Second {
		t.Fatalf("stalled read returned after %v, want ~the 50ms deadline", el)
	}
	if fau.Stalled() == 0 {
		t.Fatal("Stalled() = 0, want at least 1")
	}

	fau.ReleaseStalls()
	n, err := ReadAtContext(context.Background(), f, buf, 0)
	if err != nil || string(buf[:n]) != "hello" {
		t.Fatalf("post-release read = %q, %v; want \"hello\", nil", buf[:n], err)
	}
}

// TestFaultyStallOpen: stalled opens are released the same way, and a
// context-free Open on a stalled name blocks until release.
func TestFaultyStallOpen(t *testing.T) {
	mem := NewMem()
	mem.WriteFile("leaf", []byte("x"))
	fau := NewFaulty(mem, FaultConfig{})
	fau.StallOpens("leaf")

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := OpenContext(ctx, fau, "leaf"); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("stalled open = %v, want DeadlineExceeded", err)
	}

	done := make(chan error, 1)
	go func() {
		f, err := fau.Open("leaf") // context-free: blocks until release
		if f != nil {
			f.Close()
		}
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("context-free open of a stalled name returned early: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	fau.ReleaseStalls()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("post-release open = %v, want nil", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("release did not unblock the stalled open")
	}
}

// TestFaultyDelays: latency injection is seeded (reproducible counts),
// bounded by the configured max, and interruptible via context.
func TestFaultyDelays(t *testing.T) {
	run := func() (int64, time.Duration) {
		mem := NewMem()
		mem.WriteFile("f", []byte("data"))
		fau := NewFaulty(mem, FaultConfig{
			Seed:          7,
			ReadDelayProb: 0.5,
			ReadDelay:     2 * time.Millisecond,
		})
		h, err := fau.Open("f")
		if err != nil {
			t.Fatal(err)
		}
		defer h.Close()
		buf := make([]byte, 4)
		start := time.Now()
		for i := 0; i < 50; i++ {
			if _, err := h.ReadAt(buf, 0); err != nil {
				t.Fatal(err)
			}
		}
		return fau.Delays(), time.Since(start)
	}
	d1, el := run()
	d2, _ := run()
	if d1 == 0 {
		t.Fatal("no delays injected at prob 0.5 over 50 reads")
	}
	if d1 != d2 {
		t.Fatalf("same seed injected %d then %d delays; want reproducible schedule", d1, d2)
	}
	// 50 reads x <=2ms: generous bound that still catches unbounded sleeps.
	if el > 30*time.Second {
		t.Fatalf("50 delayed reads took %v", el)
	}

	// A canceled context aborts an in-flight injected delay.
	mem := NewMem()
	mem.WriteFile("f", []byte("data"))
	fau := NewFaulty(mem, FaultConfig{Seed: 1, ReadDelayProb: 1, ReadDelay: time.Hour})
	h, err := fau.Open("f")
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := ReadAtContext(ctx, h, make([]byte, 4), 0); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("delayed read = %v, want DeadlineExceeded", err)
	}
}

// TestDecoratorsForwardCtx: the observed and retry decorators must not
// hide the wrapped storage's context support — a stall behind both
// decorators still aborts on deadline.
func TestDecoratorsForwardCtx(t *testing.T) {
	mem := NewMem()
	mem.WriteFile("leaf", []byte("data"))
	fau := NewFaulty(mem, FaultConfig{})
	var store Storage = NewRetry(fau, RetryConfig{MaxAttempts: 3, BaseDelay: time.Millisecond})

	if _, ok := store.(CtxOpener); !ok {
		t.Fatal("Retry does not implement CtxOpener")
	}
	f, err := OpenContext(context.Background(), store, "leaf")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, ok := f.(CtxReaderAt); !ok {
		t.Fatal("retryFile does not implement CtxReaderAt")
	}

	fau.StallReads("leaf")
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := ReadAtContext(ctx, f, make([]byte, 4), 0); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("stalled read through decorators = %v, want DeadlineExceeded", err)
	}
	fau.ReleaseStalls()
}

// TestSleepContext covers the zero-duration and pre-canceled fast paths.
func TestSleepContext(t *testing.T) {
	if err := SleepContext(context.Background(), 0); err != nil {
		t.Fatalf("SleepContext(0) = %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := SleepContext(ctx, time.Hour); !errors.Is(err, context.Canceled) {
		t.Fatalf("SleepContext(canceled) = %v, want Canceled", err)
	}
	if err := SleepContext(ctx, 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("SleepContext(canceled, 0) = %v, want Canceled", err)
	}
}
