package pfs

import (
	"io"
	"os"
	"sync"
	"testing"
)

// backends returns both implementations for shared contract tests.
func backends(t *testing.T) map[string]Storage {
	t.Helper()
	osb, err := NewOS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Storage{"os": osb, "mem": NewMem()}
}

func TestWriteOpenRoundTrip(t *testing.T) {
	for name, s := range backends(t) {
		t.Run(name, func(t *testing.T) {
			data := []byte("hello storage")
			if err := s.WriteFile("a.bat", data); err != nil {
				t.Fatal(err)
			}
			f, err := s.Open("a.bat")
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			if f.Size() != int64(len(data)) {
				t.Errorf("Size = %d", f.Size())
			}
			buf := make([]byte, 5)
			if _, err := f.ReadAt(buf, 6); err != nil && err != io.EOF {
				t.Fatal(err)
			}
			if string(buf) != "stora" {
				t.Errorf("ReadAt = %q", buf)
			}
		})
	}
}

func TestOpenMissing(t *testing.T) {
	for name, s := range backends(t) {
		t.Run(name, func(t *testing.T) {
			if _, err := s.Open("nope"); err == nil {
				t.Error("missing file should error")
			}
		})
	}
}

func TestList(t *testing.T) {
	for name, s := range backends(t) {
		t.Run(name, func(t *testing.T) {
			for _, n := range []string{"c", "a", "b"} {
				if err := s.WriteFile(n, []byte(n)); err != nil {
					t.Fatal(err)
				}
			}
			names, err := s.List()
			if err != nil {
				t.Fatal(err)
			}
			if len(names) != 3 || names[0] != "a" || names[2] != "c" {
				t.Errorf("List = %v", names)
			}
		})
	}
}

func TestStats(t *testing.T) {
	for name, s := range backends(t) {
		t.Run(name, func(t *testing.T) {
			s.WriteFile("x", make([]byte, 100))
			s.WriteFile("y", make([]byte, 50))
			st := s.Stats()
			if st.FilesWritten != 2 || st.BytesWritten != 150 {
				t.Errorf("stats = %+v", st)
			}
		})
	}
}

func TestInvalidNames(t *testing.T) {
	osb, err := NewOS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{"", "a/b", "../evil"} {
		if err := osb.WriteFile(bad, nil); err == nil {
			t.Errorf("name %q should be rejected", bad)
		}
	}
	if err := NewMem().WriteFile("", nil); err == nil {
		t.Error("empty name should be rejected")
	}
}

func TestOverwrite(t *testing.T) {
	for name, s := range backends(t) {
		t.Run(name, func(t *testing.T) {
			s.WriteFile("f", []byte("old"))
			s.WriteFile("f", []byte("new!"))
			f, err := s.Open("f")
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			if f.Size() != 4 {
				t.Errorf("overwrite size = %d", f.Size())
			}
		})
	}
}

func TestWriteIsolation(t *testing.T) {
	// Mutating the caller's buffer after WriteFile must not affect the
	// stored data.
	m := NewMem()
	buf := []byte("abc")
	m.WriteFile("f", buf)
	buf[0] = 'z'
	f, _ := m.Open("f")
	got := make([]byte, 3)
	f.ReadAt(got, 0)
	if string(got) != "abc" {
		t.Errorf("stored data aliased caller buffer: %q", got)
	}
}

func TestMemConcurrent(t *testing.T) {
	m := NewMem()
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := string(rune('a' + i%26))
			m.WriteFile(name, []byte{byte(i)})
			if f, err := m.Open(name); err == nil {
				f.Close()
			}
			m.List()
			m.Stats()
		}(i)
	}
	wg.Wait()
}

func TestOSNoTmpLeftovers(t *testing.T) {
	dir := t.TempDir()
	s, err := NewOS(dir)
	if err != nil {
		t.Fatal(err)
	}
	s.WriteFile("data", make([]byte, 10))
	ents, _ := os.ReadDir(dir)
	for _, e := range ents {
		if e.Name() != "data" {
			t.Errorf("leftover file %q", e.Name())
		}
	}
}

// writeRaw drops a file into a storage directory behind the OS backend's
// back, for tests that simulate crashes.
func writeRaw(dir, name string, data []byte) error {
	return os.WriteFile(dir+"/"+name, data, 0o644)
}
