// Context plumbing for the storage layer. Storage and File are kept free
// of context parameters (most backends cannot abort a syscall mid-flight
// anyway); instead, backends that CAN honor cancellation — the fault
// injector's stalls and delays, the retry decorator's backoff — implement
// the optional CtxOpener/CtxReaderAt interfaces, and callers go through
// OpenContext/ReadAtContext, which fall back to a plain call after a
// before-call deadline check. The resulting model: ctx-aware backends
// abort promptly even mid-operation; plain backends are checked between
// operations.
package pfs

import (
	"context"
	"errors"
	"io"
	"time"
)

// CtxReaderAt is the optional context-aware extension of io.ReaderAt.
// Implementations must abort (returning ctx.Err()) when ctx ends while the
// read is blocked, and must behave identically to ReadAt otherwise.
type CtxReaderAt interface {
	ReadAtCtx(ctx context.Context, p []byte, off int64) (int, error)
}

// CtxOpener is the optional context-aware extension of Storage.Open.
type CtxOpener interface {
	OpenCtx(ctx context.Context, name string) (File, error)
}

// ReadAtContext reads through r honoring ctx: a CtxReaderAt gets the
// context (and may abort mid-read); any other reader is guarded by a
// before-call check so a canceled caller stops issuing new reads.
func ReadAtContext(ctx context.Context, r io.ReaderAt, p []byte, off int64) (int, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	if cr, ok := r.(CtxReaderAt); ok {
		return cr.ReadAtCtx(ctx, p, off)
	}
	return r.ReadAt(p, off)
}

// OpenContext opens name through s honoring ctx, with the same contract as
// ReadAtContext.
func OpenContext(ctx context.Context, s Storage, name string) (File, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if co, ok := s.(CtxOpener); ok {
		return co.OpenCtx(ctx, name)
	}
	return s.Open(name)
}

// SleepContext sleeps for d or until ctx ends, whichever comes first,
// returning ctx.Err() when interrupted. This is the interruptible
// replacement for time.Sleep in any code that holds a context (batlint's
// ctxsleep analyzer enforces it).
func SleepContext(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// IsContextErr reports whether err is (or wraps) a cancellation or
// deadline error. Such errors are never retryable: the caller asked to
// stop, so masking them with backoff would defeat the point.
func IsContextErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}
