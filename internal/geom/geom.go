// Package geom provides the small set of 3D geometric primitives used
// throughout the library: vectors, axis-aligned bounding boxes, and the
// axis/overlap helpers needed by the aggregation tree and the BAT layout.
package geom

import (
	"fmt"
	"math"
)

// Axis identifies one of the three spatial axes.
type Axis int

// The three spatial axes.
const (
	X Axis = iota
	Y
	Z
)

func (a Axis) String() string {
	switch a {
	case X:
		return "x"
	case Y:
		return "y"
	case Z:
		return "z"
	}
	return fmt.Sprintf("Axis(%d)", int(a))
}

// Vec3 is a point or direction in 3D space.
type Vec3 struct {
	X, Y, Z float64
}

// V3 constructs a Vec3.
func V3(x, y, z float64) Vec3 { return Vec3{x, y, z} }

// Add returns v + o.
func (v Vec3) Add(o Vec3) Vec3 { return Vec3{v.X + o.X, v.Y + o.Y, v.Z + o.Z} }

// Sub returns v - o.
func (v Vec3) Sub(o Vec3) Vec3 { return Vec3{v.X - o.X, v.Y - o.Y, v.Z - o.Z} }

// Scale returns v * s.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{v.X * s, v.Y * s, v.Z * s} }

// Mul returns the component-wise product of v and o.
func (v Vec3) Mul(o Vec3) Vec3 { return Vec3{v.X * o.X, v.Y * o.Y, v.Z * o.Z} }

// Dot returns the dot product of v and o.
func (v Vec3) Dot(o Vec3) float64 { return v.X*o.X + v.Y*o.Y + v.Z*o.Z }

// Length returns the Euclidean norm of v.
func (v Vec3) Length() float64 { return math.Sqrt(v.Dot(v)) }

// Component returns the coordinate of v along axis a.
func (v Vec3) Component(a Axis) float64 {
	switch a {
	case X:
		return v.X
	case Y:
		return v.Y
	default:
		return v.Z
	}
}

// SetComponent returns a copy of v with the coordinate along axis a replaced.
func (v Vec3) SetComponent(a Axis, val float64) Vec3 {
	switch a {
	case X:
		v.X = val
	case Y:
		v.Y = val
	default:
		v.Z = val
	}
	return v
}

// Min returns the component-wise minimum of v and o.
func (v Vec3) Min(o Vec3) Vec3 {
	return Vec3{math.Min(v.X, o.X), math.Min(v.Y, o.Y), math.Min(v.Z, o.Z)}
}

// Max returns the component-wise maximum of v and o.
func (v Vec3) Max(o Vec3) Vec3 {
	return Vec3{math.Max(v.X, o.X), math.Max(v.Y, o.Y), math.Max(v.Z, o.Z)}
}

// Box is an axis-aligned bounding box. A box with Lower > Upper on any axis
// is considered empty; EmptyBox returns the canonical empty box.
type Box struct {
	Lower, Upper Vec3
}

// EmptyBox returns a box that contains nothing and acts as the identity for
// Union.
func EmptyBox() Box {
	inf := math.Inf(1)
	return Box{Lower: Vec3{inf, inf, inf}, Upper: Vec3{-inf, -inf, -inf}}
}

// NewBox returns the box spanning [lower, upper].
func NewBox(lower, upper Vec3) Box { return Box{Lower: lower, Upper: upper} }

// IsEmpty reports whether the box contains no volume and no points.
func (b Box) IsEmpty() bool {
	return b.Lower.X > b.Upper.X || b.Lower.Y > b.Upper.Y || b.Lower.Z > b.Upper.Z
}

// Union returns the smallest box containing both b and o.
func (b Box) Union(o Box) Box {
	return Box{Lower: b.Lower.Min(o.Lower), Upper: b.Upper.Max(o.Upper)}
}

// Extend returns the smallest box containing b and the point p.
func (b Box) Extend(p Vec3) Box {
	return Box{Lower: b.Lower.Min(p), Upper: b.Upper.Max(p)}
}

// Size returns the extent of the box along each axis.
func (b Box) Size() Vec3 { return b.Upper.Sub(b.Lower) }

// Center returns the centroid of the box.
func (b Box) Center() Vec3 { return b.Lower.Add(b.Upper).Scale(0.5) }

// Volume returns the volume of the box, or 0 for an empty box.
func (b Box) Volume() float64 {
	if b.IsEmpty() {
		return 0
	}
	s := b.Size()
	return s.X * s.Y * s.Z
}

// LongestAxis returns the axis along which the box is widest.
func (b Box) LongestAxis() Axis {
	s := b.Size()
	if s.X >= s.Y && s.X >= s.Z {
		return X
	}
	if s.Y >= s.Z {
		return Y
	}
	return Z
}

// Contains reports whether the point p lies inside the box (inclusive).
func (b Box) Contains(p Vec3) bool {
	return p.X >= b.Lower.X && p.X <= b.Upper.X &&
		p.Y >= b.Lower.Y && p.Y <= b.Upper.Y &&
		p.Z >= b.Lower.Z && p.Z <= b.Upper.Z
}

// Overlaps reports whether b and o share any point (inclusive of faces).
func (b Box) Overlaps(o Box) bool {
	if b.IsEmpty() || o.IsEmpty() {
		return false
	}
	return b.Lower.X <= o.Upper.X && b.Upper.X >= o.Lower.X &&
		b.Lower.Y <= o.Upper.Y && b.Upper.Y >= o.Lower.Y &&
		b.Lower.Z <= o.Upper.Z && b.Upper.Z >= o.Lower.Z
}

// ContainsBox reports whether o lies entirely within b.
func (b Box) ContainsBox(o Box) bool {
	if o.IsEmpty() {
		return true
	}
	return b.Contains(o.Lower) && b.Contains(o.Upper)
}

// Intersect returns the overlap region of b and o; the result may be empty.
func (b Box) Intersect(o Box) Box {
	return Box{Lower: b.Lower.Max(o.Lower), Upper: b.Upper.Min(o.Upper)}
}

// SplitAt cuts the box with a plane perpendicular to axis at position pos,
// returning the lower and upper halves. pos is clamped into the box.
func (b Box) SplitAt(axis Axis, pos float64) (lo, hi Box) {
	pos = math.Max(b.Lower.Component(axis), math.Min(b.Upper.Component(axis), pos))
	lo, hi = b, b
	lo.Upper = lo.Upper.SetComponent(axis, pos)
	hi.Lower = hi.Lower.SetComponent(axis, pos)
	return lo, hi
}

// Normalize maps p into [0,1]^3 coordinates relative to the box. Degenerate
// axes (zero extent) map to 0.
func (b Box) Normalize(p Vec3) Vec3 {
	s := b.Size()
	var out Vec3
	if s.X > 0 {
		out.X = (p.X - b.Lower.X) / s.X
	}
	if s.Y > 0 {
		out.Y = (p.Y - b.Lower.Y) / s.Y
	}
	if s.Z > 0 {
		out.Z = (p.Z - b.Lower.Z) / s.Z
	}
	return out
}

func (b Box) String() string {
	return fmt.Sprintf("[(%g, %g, %g) - (%g, %g, %g)]",
		b.Lower.X, b.Lower.Y, b.Lower.Z, b.Upper.X, b.Upper.Y, b.Upper.Z)
}
