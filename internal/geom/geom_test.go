package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestVecOps(t *testing.T) {
	a := V3(1, 2, 3)
	b := V3(4, 5, 6)
	if got := a.Add(b); got != V3(5, 7, 9) {
		t.Errorf("Add = %v", got)
	}
	if got := b.Sub(a); got != V3(3, 3, 3) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Scale(2); got != V3(2, 4, 6) {
		t.Errorf("Scale = %v", got)
	}
	if got := a.Mul(b); got != V3(4, 10, 18) {
		t.Errorf("Mul = %v", got)
	}
	if got := a.Dot(b); got != 32 {
		t.Errorf("Dot = %v", got)
	}
	if got := V3(3, 4, 0).Length(); got != 5 {
		t.Errorf("Length = %v", got)
	}
}

func TestVecComponent(t *testing.T) {
	v := V3(1, 2, 3)
	for i, want := range []float64{1, 2, 3} {
		if got := v.Component(Axis(i)); got != want {
			t.Errorf("Component(%v) = %v, want %v", Axis(i), got, want)
		}
	}
	for i := 0; i < 3; i++ {
		got := v.SetComponent(Axis(i), 9)
		if got.Component(Axis(i)) != 9 {
			t.Errorf("SetComponent(%v) failed: %v", Axis(i), got)
		}
		// Other components untouched.
		for j := 0; j < 3; j++ {
			if j != i && got.Component(Axis(j)) != v.Component(Axis(j)) {
				t.Errorf("SetComponent(%v) disturbed axis %v", Axis(i), Axis(j))
			}
		}
	}
}

func TestAxisString(t *testing.T) {
	if X.String() != "x" || Y.String() != "y" || Z.String() != "z" {
		t.Error("axis names wrong")
	}
	if Axis(7).String() != "Axis(7)" {
		t.Error("unknown axis name wrong")
	}
}

func TestEmptyBox(t *testing.T) {
	e := EmptyBox()
	if !e.IsEmpty() {
		t.Fatal("EmptyBox not empty")
	}
	if e.Volume() != 0 {
		t.Error("empty box has volume")
	}
	b := NewBox(V3(0, 0, 0), V3(1, 1, 1))
	if got := e.Union(b); got != b {
		t.Errorf("empty union identity violated: %v", got)
	}
	if e.Overlaps(b) || b.Overlaps(e) {
		t.Error("empty box overlaps something")
	}
	if !b.ContainsBox(e) {
		t.Error("any box should contain the empty box")
	}
}

func TestBoxBasics(t *testing.T) {
	b := NewBox(V3(0, 0, 0), V3(2, 4, 8))
	if b.IsEmpty() {
		t.Fatal("box empty")
	}
	if got := b.Size(); got != V3(2, 4, 8) {
		t.Errorf("Size = %v", got)
	}
	if got := b.Center(); got != V3(1, 2, 4) {
		t.Errorf("Center = %v", got)
	}
	if got := b.Volume(); got != 64 {
		t.Errorf("Volume = %v", got)
	}
	if got := b.LongestAxis(); got != Z {
		t.Errorf("LongestAxis = %v", got)
	}
	if !b.Contains(V3(1, 1, 1)) || b.Contains(V3(3, 1, 1)) {
		t.Error("Contains wrong")
	}
	// Boundary inclusive.
	if !b.Contains(V3(2, 4, 8)) || !b.Contains(V3(0, 0, 0)) {
		t.Error("boundary points should be contained")
	}
}

func TestLongestAxisTies(t *testing.T) {
	if got := NewBox(V3(0, 0, 0), V3(1, 1, 1)).LongestAxis(); got != X {
		t.Errorf("cube longest = %v, want x", got)
	}
	if got := NewBox(V3(0, 0, 0), V3(1, 2, 2)).LongestAxis(); got != Y {
		t.Errorf("yz tie longest = %v, want y", got)
	}
}

func TestOverlapsAndIntersect(t *testing.T) {
	a := NewBox(V3(0, 0, 0), V3(2, 2, 2))
	b := NewBox(V3(1, 1, 1), V3(3, 3, 3))
	c := NewBox(V3(5, 5, 5), V3(6, 6, 6))
	if !a.Overlaps(b) {
		t.Error("a should overlap b")
	}
	if a.Overlaps(c) {
		t.Error("a should not overlap c")
	}
	want := NewBox(V3(1, 1, 1), V3(2, 2, 2))
	if got := a.Intersect(b); got != want {
		t.Errorf("Intersect = %v, want %v", got, want)
	}
	if !a.Intersect(c).IsEmpty() {
		t.Error("disjoint intersect should be empty")
	}
	// Face-touching boxes overlap (inclusive).
	d := NewBox(V3(2, 0, 0), V3(4, 2, 2))
	if !a.Overlaps(d) {
		t.Error("face-touching boxes should overlap")
	}
}

func TestSplitAt(t *testing.T) {
	b := NewBox(V3(0, 0, 0), V3(4, 4, 4))
	lo, hi := b.SplitAt(X, 1)
	if lo.Upper.X != 1 || hi.Lower.X != 1 {
		t.Errorf("split planes wrong: %v %v", lo, hi)
	}
	if lo.Lower != b.Lower || hi.Upper != b.Upper {
		t.Error("split disturbed outer bounds")
	}
	// Clamped split.
	lo, hi = b.SplitAt(Y, 10)
	if lo.Upper.Y != 4 || hi.Lower.Y != 4 {
		t.Errorf("clamped split wrong: %v %v", lo, hi)
	}
}

func TestNormalize(t *testing.T) {
	b := NewBox(V3(-1, 0, 2), V3(1, 2, 4))
	if got := b.Normalize(V3(0, 1, 3)); got != V3(0.5, 0.5, 0.5) {
		t.Errorf("Normalize = %v", got)
	}
	if got := b.Normalize(b.Lower); got != V3(0, 0, 0) {
		t.Errorf("Normalize lower = %v", got)
	}
	if got := b.Normalize(b.Upper); got != V3(1, 1, 1) {
		t.Errorf("Normalize upper = %v", got)
	}
	// Degenerate axis maps to 0.
	flat := NewBox(V3(0, 0, 0), V3(0, 1, 1))
	if got := flat.Normalize(V3(0, 0.5, 0.5)).X; got != 0 {
		t.Errorf("degenerate axis = %v, want 0", got)
	}
}

func randBox(r *rand.Rand) Box {
	a := V3(r.Float64()*10-5, r.Float64()*10-5, r.Float64()*10-5)
	b := V3(r.Float64()*10-5, r.Float64()*10-5, r.Float64()*10-5)
	return Box{Lower: a.Min(b), Upper: a.Max(b)}
}

func TestUnionPropertyBased(t *testing.T) {
	// Union contains both operands, is commutative and associative.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b, c := randBox(r), randBox(r), randBox(r)
		u := a.Union(b)
		if !u.ContainsBox(a) || !u.ContainsBox(b) {
			return false
		}
		if u != b.Union(a) {
			return false
		}
		return a.Union(b).Union(c) == a.Union(b.Union(c))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIntersectPropertyBased(t *testing.T) {
	// A point is in the intersection iff it is in both boxes.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randBox(r), randBox(r)
		inter := a.Intersect(b)
		for i := 0; i < 20; i++ {
			p := V3(r.Float64()*10-5, r.Float64()*10-5, r.Float64()*10-5)
			if (a.Contains(p) && b.Contains(p)) != (!inter.IsEmpty() && inter.Contains(p)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestExtendProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		b := EmptyBox()
		pts := make([]Vec3, 0, 16)
		for i := 0; i < 16; i++ {
			p := V3(r.NormFloat64(), r.NormFloat64(), r.NormFloat64())
			pts = append(pts, p)
			b = b.Extend(p)
		}
		for _, p := range pts {
			if !b.Contains(p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVolumeMonotone(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randBox(r), randBox(r)
		u := a.Union(b)
		return u.Volume() >= math.Max(a.Volume(), b.Volume()) &&
			a.Intersect(b).Volume() <= math.Min(a.Volume(), b.Volume())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
