package convert

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"libbat/internal/core"
	"libbat/internal/geom"
	"libbat/internal/particles"
	"libbat/internal/pfs"
)

func TestReadCSV(t *testing.T) {
	in := "x,y,z,mass,temp\n1,2,3,0.5,300\n4,5,6,0.7,310\n"
	set, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() != 2 {
		t.Fatalf("Len = %d", set.Len())
	}
	if set.Schema.NumAttrs() != 2 || set.Schema.Attrs[0].Name != "mass" {
		t.Errorf("schema = %+v", set.Schema)
	}
	if set.Position(0) != geom.V3(1, 2, 3) || set.Attrs[1][1] != 310 {
		t.Error("values wrong")
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"",                      // no header
		"x,y\n",                 // too few columns
		"a,y,z\n",               // wrong position column
		"x,y,z,m\n1,2,3\n",      // short row (csv lib catches)
		"x,y,z,m\n1,2,zap,4\n",  // bad number
		"x,y,z,m\n1,2,3,zing\n", // bad attribute
	}
	for _, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in)); err == nil {
			t.Errorf("input %q should error", in)
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	set := particles.NewSet(particles.NewSchema("a", "b"), 100)
	for i := 0; i < 100; i++ {
		set.Append(geom.V3(r.Float64(), r.Float64(), r.Float64()),
			[]float64{r.NormFloat64(), float64(i)})
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, set); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 100 {
		t.Fatalf("round trip %d particles", got.Len())
	}
	for i := 0; i < 100; i++ {
		if got.X[i] != set.X[i] || got.Attrs[1][i] != set.Attrs[1][i] {
			t.Fatalf("row %d mismatch", i)
		}
	}
}

func TestToDataset(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	set := particles.NewSet(particles.NewSchema("v"), 5000)
	for i := 0; i < 5000; i++ {
		// Offset, non-unit domain to exercise bounds handling.
		set.Append(geom.V3(10+r.Float64()*4, -3+r.Float64(), r.Float64()*2),
			[]float64{r.Float64()})
	}
	store := pfs.NewMem()
	stats, err := ToDataset(set, store, "conv", Options{
		VirtualRanks: 8,
		Write:        core.DefaultWriteConfig(20 * 1024),
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.TotalCount != 5000 {
		t.Fatalf("wrote %d", stats.TotalCount)
	}
	names, _ := store.List()
	if len(names) < 2 {
		t.Fatalf("files = %v", names)
	}
}

func TestToDatasetDefaults(t *testing.T) {
	set := particles.NewSet(particles.NewSchema("v"), 100)
	for i := 0; i < 100; i++ {
		set.Append(geom.V3(float64(i), 0, 0), []float64{1})
	}
	store := pfs.NewMem()
	stats, err := ToDataset(set, store, "d", Options{Write: core.DefaultWriteConfig(1 << 20)})
	if err != nil {
		t.Fatal(err)
	}
	if stats.TotalCount != 100 {
		t.Fatalf("wrote %d", stats.TotalCount)
	}
}

func TestToDatasetBoundaryParticles(t *testing.T) {
	// Particles exactly on the global max corner must land in a rank.
	set := particles.NewSet(particles.NewSchema("v"), 0)
	for i := 0; i < 64; i++ {
		set.Append(geom.V3(float64(i%4), float64(i/4%4), float64(i/16)), []float64{1})
	}
	store := pfs.NewMem()
	stats, err := ToDataset(set, store, "edge", Options{
		VirtualRanks: 8,
		Write:        core.DefaultWriteConfig(1 << 20),
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.TotalCount != 64 {
		t.Fatalf("wrote %d of 64", stats.TotalCount)
	}
}
