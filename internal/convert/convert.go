// Package convert imports external particle data into BAT datasets — the
// "lengthy postprocess conversion step" the paper's layout makes
// unnecessary for its own writes (§I), provided here so existing flat
// dumps can adopt the layout. A CSV dump is loaded, spatially partitioned
// onto virtual ranks, and pushed through the same collective two-phase
// pipeline a simulation would use.
package convert

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"

	"libbat/internal/core"
	"libbat/internal/fabric"
	"libbat/internal/geom"
	"libbat/internal/particles"
	"libbat/internal/pfs"
	"libbat/internal/workloads"
)

// ReadCSV parses particle data from r. The first row is a header and must
// begin with the columns x, y, z (case-insensitive); every further column
// becomes a float64 attribute. Blank lines are skipped.
func ReadCSV(r io.Reader) (*particles.Set, error) {
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("convert: reading header: %w", err)
	}
	if len(header) < 3 {
		return nil, fmt.Errorf("convert: need at least x,y,z columns, got %d", len(header))
	}
	for i, want := range []string{"x", "y", "z"} {
		if strings.ToLower(strings.TrimSpace(header[i])) != want {
			return nil, fmt.Errorf("convert: column %d is %q, want %q", i, header[i], want)
		}
	}
	names := make([]string, 0, len(header)-3)
	for _, h := range header[3:] {
		names = append(names, strings.TrimSpace(h))
	}
	set := particles.NewSet(particles.NewSchema(names...), 0)
	attrs := make([]float64, len(names))
	line := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		line++
		if err != nil {
			return nil, fmt.Errorf("convert: line %d: %w", line, err)
		}
		if len(rec) != len(header) {
			return nil, fmt.Errorf("convert: line %d has %d fields, want %d", line, len(rec), len(header))
		}
		var p geom.Vec3
		vals := [3]*float64{&p.X, &p.Y, &p.Z}
		for i := 0; i < 3; i++ {
			v, err := strconv.ParseFloat(strings.TrimSpace(rec[i]), 64)
			if err != nil {
				return nil, fmt.Errorf("convert: line %d column %d: %w", line, i, err)
			}
			*vals[i] = v
		}
		for i := range attrs {
			v, err := strconv.ParseFloat(strings.TrimSpace(rec[3+i]), 64)
			if err != nil {
				return nil, fmt.Errorf("convert: line %d column %d: %w", line, 3+i, err)
			}
			attrs[i] = v
		}
		set.Append(p, attrs)
	}
	return set, nil
}

// WriteCSV writes a particle set in the format ReadCSV accepts.
func WriteCSV(w io.Writer, set *particles.Set) error {
	cw := csv.NewWriter(w)
	header := []string{"x", "y", "z"}
	for _, a := range set.Schema.Attrs {
		header = append(header, a.Name)
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	rec := make([]string, len(header))
	for i := 0; i < set.Len(); i++ {
		p := set.Position(i)
		rec[0] = strconv.FormatFloat(p.X, 'g', -1, 32)
		rec[1] = strconv.FormatFloat(p.Y, 'g', -1, 32)
		rec[2] = strconv.FormatFloat(p.Z, 'g', -1, 32)
		for a := range set.Attrs {
			rec[3+a] = strconv.FormatFloat(set.Attrs[a][i], 'g', -1, 64)
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Options controls a conversion.
type Options struct {
	// VirtualRanks is the number of simulated ranks the data is
	// partitioned onto before the collective write; 0 picks one rank per
	// ~256k particles (minimum 4).
	VirtualRanks int
	// Write is the pipeline configuration (target size, strategy, BAT
	// options).
	Write core.WriteConfig
}

// ToDataset partitions the particles spatially onto virtual ranks and
// writes them through the two-phase pipeline as dataset `base` in store.
func ToDataset(set *particles.Set, store pfs.Storage, base string, opts Options) (*core.WriteStats, error) {
	n := set.Len()
	vranks := opts.VirtualRanks
	if vranks <= 0 {
		vranks = n / 262144
		if vranks < 4 {
			vranks = 4
		}
	}
	bounds := set.Bounds()
	if n == 0 {
		bounds = geom.NewBox(geom.V3(0, 0, 0), geom.V3(1, 1, 1))
	}
	// Grow the upper corner epsilon so boundary particles bin inside.
	sz := bounds.Size()
	eps := 1e-6 * (sz.X + sz.Y + sz.Z + 1)
	bounds.Upper = bounds.Upper.Add(geom.V3(eps, eps, eps))
	nx, ny, nz := workloads.Factor3D(vranks)
	decomp, err := workloads.NewDecomp(bounds, nx, ny, nz)
	if err != nil {
		return nil, err
	}

	// Partition by position.
	parts := make([]*particles.Set, vranks)
	for r := range parts {
		parts[r] = particles.NewSet(set.Schema, 0)
	}
	attrs := make([]float64, set.Schema.NumAttrs())
	for i := 0; i < n; i++ {
		p := set.Position(i)
		norm := bounds.Normalize(p)
		ix := clampInt(int(norm.X*float64(nx)), nx-1)
		iy := clampInt(int(norm.Y*float64(ny)), ny-1)
		iz := clampInt(int(norm.Z*float64(nz)), nz-1)
		r := (iz*ny+iy)*nx + ix
		for a := range attrs {
			attrs[a] = set.Attrs[a][i]
		}
		parts[r].Append(p, attrs)
	}

	var rootStats *core.WriteStats
	err = fabric.Run(vranks, func(c *fabric.Comm) error {
		st, err := core.Write(c, store, base, parts[c.Rank()], decomp.RankBounds(c.Rank()), opts.Write)
		if c.Rank() == 0 {
			rootStats = st
		}
		return err
	})
	return rootStats, err
}

func clampInt(v, max int) int {
	if v < 0 {
		return 0
	}
	if v > max {
		return max
	}
	return v
}
