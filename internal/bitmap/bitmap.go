// Package bitmap implements the fixed-width binned bitmap indices used to
// accelerate attribute-subset queries in the BAT layout.
//
// Each index is exactly 32 bits: bit i covers the i-th of 32 equal-width
// bins spanning a value range. Restricting the width keeps storage fixed and
// predictable and allows deduplicating the bitmaps of a whole file through a
// small dictionary addressed by 16-bit IDs (paper §III-C2, §III-C3).
// Bitmaps merge with OR and test for potential overlap with AND; they admit
// false positives (a set bit only means "some value may fall in this bin")
// but never false negatives.
package bitmap

import (
	"errors"
	"math"
	"math/bits"
)

// Bins is the fixed number of value bins per bitmap.
const Bins = 32

// Bitmap is a 32-bin binned index over a value range.
type Bitmap uint32

// Range is a closed value interval an index is computed against.
type Range struct {
	Min, Max float64
}

// Extend grows the range to include v.
func (r Range) Extend(v float64) Range {
	return Range{Min: math.Min(r.Min, v), Max: math.Max(r.Max, v)}
}

// Union returns the smallest range covering both r and o.
func (r Range) Union(o Range) Range {
	return Range{Min: math.Min(r.Min, o.Min), Max: math.Max(r.Max, o.Max)}
}

// IsEmpty reports whether the range covers no values.
func (r Range) IsEmpty() bool { return r.Min > r.Max }

// EmptyRange returns the identity element for Extend/Union.
func EmptyRange() Range { return Range{Min: math.Inf(1), Max: math.Inf(-1)} }

// Width returns Max-Min, or 0 for empty or degenerate ranges.
func (r Range) Width() float64 {
	if r.IsEmpty() {
		return 0
	}
	return r.Max - r.Min
}

// Bin returns the bin index in [0, Bins) that value v falls into relative to
// range r. Values outside the range clamp to the boundary bins; a degenerate
// range maps everything to bin 0.
func (r Range) Bin(v float64) int {
	w := r.Width()
	if w <= 0 {
		return 0
	}
	b := int((v - r.Min) / w * Bins)
	if b < 0 {
		return 0
	}
	if b >= Bins {
		return Bins - 1
	}
	return b
}

// BinRange returns the value interval covered by bin b of range r.
func (r Range) BinRange(b int) Range {
	w := r.Width()
	lo := r.Min + w*float64(b)/Bins
	hi := r.Min + w*float64(b+1)/Bins
	return Range{Min: lo, Max: hi}
}

// OfValue returns a bitmap with only the bin containing v set.
func OfValue(v float64, r Range) Bitmap {
	return 1 << uint(r.Bin(v))
}

// OfValues builds the index of a set of values relative to range r.
func OfValues(vs []float64, r Range) Bitmap {
	var b Bitmap
	for _, v := range vs {
		b |= OfValue(v, r)
	}
	return b
}

// OfQuery returns the bitmap matching every bin that overlaps the query
// interval [lo, hi] relative to range r. Testing a node's bitmap with
// Overlaps against this mask conservatively answers "could any contained
// value satisfy the query?".
func OfQuery(lo, hi float64, r Range) Bitmap {
	if hi < lo || r.IsEmpty() {
		return 0
	}
	if hi < r.Min || lo > r.Max {
		return 0
	}
	b0 := r.Bin(lo)
	b1 := r.Bin(hi)
	var b Bitmap
	for i := b0; i <= b1; i++ {
		b |= 1 << uint(i)
	}
	return b
}

// Merge returns the union of two bitmaps (bitwise OR).
func (b Bitmap) Merge(o Bitmap) Bitmap { return b | o }

// Overlaps reports whether any bin is set in both bitmaps (bitwise AND).
func (b Bitmap) Overlaps(o Bitmap) bool { return b&o != 0 }

// PopCount returns the number of set bins.
func (b Bitmap) PopCount() int { return bits.OnesCount32(uint32(b)) }

// Remap re-expresses a bitmap computed against range `from` in terms of
// range `to`. Each set source bin is mapped to every destination bin its
// value interval overlaps, so the result remains conservative (no false
// negatives). This implements the aggregator-local to global range remap of
// paper §III-D.
func (b Bitmap) Remap(from, to Range) Bitmap {
	if b == 0 {
		return 0
	}
	if from == to {
		return b
	}
	if to.Width() <= 0 {
		// Degenerate destination: everything lands in bin 0.
		return 1
	}
	var out Bitmap
	for i := 0; i < Bins; i++ {
		if b&(1<<uint(i)) == 0 {
			continue
		}
		br := from.BinRange(i)
		if from.Width() <= 0 {
			// Degenerate source range: the bin holds exactly from.Min.
			br = Range{Min: from.Min, Max: from.Min}
		}
		out |= OfQuery(br.Min, br.Max, to)
	}
	return out
}

// ID indexes a Dictionary entry. The 16-bit width bounds dictionary size to
// 65536 unique bitmaps per file (paper §III-C3).
type ID uint16

// MaxDictSize is the maximum number of unique bitmaps a dictionary holds.
const MaxDictSize = 1 << 16

// ErrDictFull is returned when a dictionary exceeds MaxDictSize entries.
var ErrDictFull = errors.New("bitmap: dictionary exceeds 65536 unique bitmaps")

// Dictionary deduplicates the bitmaps of a tree, replacing each 32-bit
// bitmap with a 16-bit ID.
type Dictionary struct {
	entries []Bitmap
	index   map[Bitmap]ID
}

// NewDictionary returns an empty dictionary.
func NewDictionary() *Dictionary {
	return &Dictionary{index: make(map[Bitmap]ID)}
}

// Intern returns the ID for b, adding it to the dictionary if new.
func (d *Dictionary) Intern(b Bitmap) (ID, error) {
	if id, ok := d.index[b]; ok {
		return id, nil
	}
	if len(d.entries) >= MaxDictSize {
		return 0, ErrDictFull
	}
	id := ID(len(d.entries))
	d.entries = append(d.entries, b)
	d.index[b] = id
	return id, nil
}

// Lookup returns the bitmap stored under id.
func (d *Dictionary) Lookup(id ID) Bitmap { return d.entries[id] }

// Len returns the number of unique bitmaps interned.
func (d *Dictionary) Len() int { return len(d.entries) }

// Entries returns the dictionary contents in ID order. The returned slice
// is the dictionary's backing store; callers must not modify it.
func (d *Dictionary) Entries() []Bitmap { return d.entries }

// FromEntries reconstructs a dictionary from serialized entries.
func FromEntries(entries []Bitmap) *Dictionary {
	d := &Dictionary{
		entries: append([]Bitmap(nil), entries...),
		index:   make(map[Bitmap]ID, len(entries)),
	}
	for i, e := range d.entries {
		if _, ok := d.index[e]; !ok {
			d.index[e] = ID(i)
		}
	}
	return d
}
