package bitmap

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRangeBasics(t *testing.T) {
	r := EmptyRange()
	if !r.IsEmpty() {
		t.Fatal("EmptyRange not empty")
	}
	r = r.Extend(3)
	r = r.Extend(-1)
	if r.Min != -1 || r.Max != 3 {
		t.Errorf("Extend = %+v", r)
	}
	if got := r.Width(); got != 4 {
		t.Errorf("Width = %v", got)
	}
	u := r.Union(Range{Min: 5, Max: 7})
	if u.Min != -1 || u.Max != 7 {
		t.Errorf("Union = %+v", u)
	}
	if EmptyRange().Width() != 0 {
		t.Error("empty width != 0")
	}
}

func TestBin(t *testing.T) {
	r := Range{Min: 0, Max: 32}
	for i := 0; i < Bins; i++ {
		if got := r.Bin(float64(i) + 0.5); got != i {
			t.Errorf("Bin(%v) = %d, want %d", float64(i)+0.5, got, i)
		}
	}
	if got := r.Bin(-5); got != 0 {
		t.Errorf("below-range bin = %d", got)
	}
	if got := r.Bin(100); got != Bins-1 {
		t.Errorf("above-range bin = %d", got)
	}
	if got := r.Bin(32); got != Bins-1 {
		t.Errorf("max value bin = %d", got)
	}
	// Degenerate range.
	d := Range{Min: 5, Max: 5}
	if got := d.Bin(5); got != 0 {
		t.Errorf("degenerate bin = %d", got)
	}
}

func TestOfValuesAndQueryNoFalseNegatives(t *testing.T) {
	// Any value matching the query interval must be detected by the
	// bitmap overlap test.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := Range{Min: rng.Float64() * 10, Max: 0}
		r.Max = r.Min + rng.Float64()*20 + 0.1
		vals := make([]float64, 50)
		for i := range vals {
			vals[i] = r.Min + rng.Float64()*r.Width()
		}
		idx := OfValues(vals, r)
		lo := r.Min + rng.Float64()*r.Width()
		hi := lo + rng.Float64()*r.Width()/2
		q := OfQuery(lo, hi, r)
		anyMatch := false
		for _, v := range vals {
			if v >= lo && v <= hi {
				anyMatch = true
				break
			}
		}
		// No false negatives: if a value matches, bitmaps must overlap.
		if anyMatch && !idx.Overlaps(q) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestOfQueryEdges(t *testing.T) {
	r := Range{Min: 0, Max: 10}
	if got := OfQuery(5, 4, r); got != 0 {
		t.Errorf("inverted query = %b", got)
	}
	if got := OfQuery(20, 30, r); got != 0 {
		t.Errorf("disjoint-above query = %b", got)
	}
	if got := OfQuery(-5, -1, r); got != 0 {
		t.Errorf("disjoint-below query = %b", got)
	}
	if got := OfQuery(-100, 100, r); got != Bitmap(math.MaxUint32) {
		t.Errorf("covering query = %b", got)
	}
	// A single-point query sets exactly one bin.
	if got := OfQuery(3.1, 3.1, r); got.PopCount() != 1 {
		t.Errorf("point query bins = %d", got.PopCount())
	}
}

func TestMergeOverlapPopCount(t *testing.T) {
	a := Bitmap(0b0011)
	b := Bitmap(0b0110)
	if got := a.Merge(b); got != 0b0111 {
		t.Errorf("Merge = %b", got)
	}
	if !a.Overlaps(b) {
		t.Error("should overlap")
	}
	if a.Overlaps(0b1000) {
		t.Error("should not overlap")
	}
	if got := a.PopCount(); got != 2 {
		t.Errorf("PopCount = %d", got)
	}
}

func TestRemapConservative(t *testing.T) {
	// Remapping a local bitmap to the global range must keep every value's
	// bin set (no false negatives introduced).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		global := Range{Min: -10, Max: 10}
		lmin := -10 + rng.Float64()*15
		local := Range{Min: lmin, Max: lmin + rng.Float64()*5 + 0.01}
		vals := make([]float64, 30)
		for i := range vals {
			vals[i] = local.Min + rng.Float64()*local.Width()
		}
		localBM := OfValues(vals, local)
		remapped := localBM.Remap(local, global)
		for _, v := range vals {
			if !remapped.Overlaps(OfValue(v, global)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestRemapIdentityAndDegenerate(t *testing.T) {
	r := Range{Min: 0, Max: 1}
	b := Bitmap(0b1010)
	if got := b.Remap(r, r); got != b {
		t.Errorf("identity remap = %b", got)
	}
	if got := Bitmap(0).Remap(r, Range{Min: 0, Max: 5}); got != 0 {
		t.Errorf("zero remap = %b", got)
	}
	// Degenerate destination collapses to bin 0.
	if got := b.Remap(r, Range{Min: 3, Max: 3}); got != 1 {
		t.Errorf("degenerate dest remap = %b", got)
	}
	// Degenerate source: all values are from.Min.
	src := Range{Min: 2, Max: 2}
	got := Bitmap(1).Remap(src, Range{Min: 0, Max: 10})
	want := OfValue(2, Range{Min: 0, Max: 10})
	if got != want {
		t.Errorf("degenerate src remap = %b, want %b", got, want)
	}
}

func TestDictionary(t *testing.T) {
	d := NewDictionary()
	id1, err := d.Intern(0b101)
	if err != nil {
		t.Fatal(err)
	}
	id2, err := d.Intern(0b111)
	if err != nil {
		t.Fatal(err)
	}
	id3, err := d.Intern(0b101)
	if err != nil {
		t.Fatal(err)
	}
	if id1 != id3 {
		t.Error("duplicate intern should return same ID")
	}
	if id1 == id2 {
		t.Error("distinct bitmaps should get distinct IDs")
	}
	if d.Len() != 2 {
		t.Errorf("Len = %d", d.Len())
	}
	if d.Lookup(id1) != 0b101 || d.Lookup(id2) != 0b111 {
		t.Error("Lookup wrong")
	}
}

func TestDictionaryRoundTrip(t *testing.T) {
	d := NewDictionary()
	rng := rand.New(rand.NewSource(1))
	ids := make([]ID, 100)
	bms := make([]Bitmap, 100)
	for i := range ids {
		bms[i] = Bitmap(rng.Uint32())
		var err error
		ids[i], err = d.Intern(bms[i])
		if err != nil {
			t.Fatal(err)
		}
	}
	d2 := FromEntries(d.Entries())
	for i, id := range ids {
		if d2.Lookup(id) != bms[i] {
			t.Fatalf("round trip lookup %d failed", i)
		}
		// Interning into the restored dictionary must dedupe.
		id2, err := d2.Intern(bms[i])
		if err != nil {
			t.Fatal(err)
		}
		if id2 != id {
			t.Fatalf("restored dictionary re-intern mismatch: %d vs %d", id2, id)
		}
	}
}

func TestDictionaryFull(t *testing.T) {
	d := NewDictionary()
	// A 32-bit bitmap space has >65536 values, so we can overflow.
	var err error
	for i := 0; i < MaxDictSize; i++ {
		_, err = d.Intern(Bitmap(i))
		if err != nil {
			t.Fatalf("unexpected error at %d: %v", i, err)
		}
	}
	if _, err = d.Intern(Bitmap(MaxDictSize)); err != ErrDictFull {
		t.Errorf("expected ErrDictFull, got %v", err)
	}
	// Existing entries still intern fine.
	if _, err = d.Intern(Bitmap(5)); err != nil {
		t.Errorf("existing entry errored: %v", err)
	}
}

func BenchmarkOfValues(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	vals := make([]float64, 4096)
	for i := range vals {
		vals[i] = rng.Float64()
	}
	r := Range{Min: 0, Max: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = OfValues(vals, r)
	}
}
