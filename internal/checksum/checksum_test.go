package checksum

import "testing"

func TestKnownValue(t *testing.T) {
	// RFC 3720 test vector: CRC32C of 32 zero bytes.
	if got := CRC32C(make([]byte, 32)); got != 0x8a9136aa {
		t.Errorf("CRC32C(zeros) = %#x, want 0x8a9136aa", got)
	}
}

func TestUpdateMatchesWhole(t *testing.T) {
	data := []byte("adaptive spatially aware i/o for multiresolution particle data")
	whole := CRC32C(data)
	split := Update(CRC32C(data[:17]), data[17:])
	if whole != split {
		t.Errorf("incremental CRC %#x != whole %#x", split, whole)
	}
}

func TestSingleBitFlipDetected(t *testing.T) {
	data := make([]byte, 256)
	for i := range data {
		data[i] = byte(i)
	}
	want := CRC32C(data)
	for i := 0; i < len(data); i++ {
		for bit := 0; bit < 8; bit++ {
			data[i] ^= 1 << bit
			if CRC32C(data) == want {
				t.Fatalf("flip of byte %d bit %d not detected", i, bit)
			}
			data[i] ^= 1 << bit
		}
	}
}
