// Package checksum provides the CRC32C (Castagnoli) checksums used by the
// on-disk formats. CRC32C is hardware accelerated on amd64/arm64 through
// hash/crc32 and detects any single-bit flip (and any burst error up to 32
// bits) in a protected section.
package checksum

import "hash/crc32"

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// CRC32C returns the Castagnoli CRC of data.
func CRC32C(data []byte) uint32 {
	return crc32.Checksum(data, castagnoli)
}

// Update extends crc with data, allowing sections to be checksummed
// incrementally.
func Update(crc uint32, data []byte) uint32 {
	return crc32.Update(crc, castagnoli, data)
}
