package analyzers

import (
	"go/ast"

	"libbat/internal/analyzers/analysis"
)

// ctxSleepExempt lists path elements where a bare time.Sleep is the
// intended idiom and flagging every site would be noise, not signal:
// fabric's simulated communicator uses tiny sleeps as scheduler yields
// inside machinery that must keep polling through cancellation (the
// collective protocol is what delivers cancellation as error replies, so
// its own progress loops cannot be the thing that stops).
var ctxSleepExempt = []string{"fabric"}

// CtxSleep flags bare time.Sleep calls in non-test code. A time.Sleep is
// invisible to context cancellation: a retry backoff or injected-latency
// delay written with it keeps a canceled query (and whatever goroutine,
// lock, or singleflight slot it holds) alive for the full duration — the
// exact bug PR 7 fixed in pfs.Retry, where exponential backoff stacked
// uncancellable sleeps in front of every stalled read. pfs.SleepContext
// sleeps the same duration but returns early with ctx.Err() when the
// caller gives up. Sites that genuinely must not be interrupted carry a
// //batlint:ignore ctxsleep waiver saying why.
var CtxSleep = &analysis.Analyzer{
	Name: "ctxsleep",
	Doc: "non-test code must not call bare time.Sleep: it ignores cancellation; " +
		"use pfs.SleepContext(ctx, d), or waive with //batlint:ignore ctxsleep <why>",
	Run: runCtxSleep,
}

func runCtxSleep(pass *analysis.Pass) error {
	if inScope(pass.Pkg.Path(), ctxSleepExempt...) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.TypesInfo, call)
			if fn == nil || fn.Name() != "Sleep" || pkgPathOf(fn) != "time" {
				return true
			}
			pass.Reportf(call.Pos(),
				"bare time.Sleep ignores cancellation and pins the caller for the full duration; use pfs.SleepContext(ctx, d) or waive with //batlint:ignore ctxsleep <why>")
			return true
		})
	}
	return nil
}
