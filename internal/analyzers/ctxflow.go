package analyzers

import (
	"go/ast"
	"go/types"

	"libbat/internal/analyzers/analysis"
)

// ctxFlowExempt lists path elements where the rule would fight the
// design: fabric's simulated communicator is the machinery that *delivers*
// cancellation as error replies, so its internals legitimately keep
// polling with their own contexts (the same reasoning as ctxsleep's
// exemption).
var ctxFlowExempt = []string{"fabric"}

// CtxFlow guards the PR 8 cancellation contract the way uintcast guards
// the format contract: a function that accepts a context.Context must
// thread it into its blocking callees — pfs/fabric I/O, cache loads, and
// anything that transitively reaches them — rather than dropping it or
// substituting context.Background()/context.TODO(). Either failure mode
// detaches the work from the caller that can cancel it: the query is
// gone, but its goroutine still holds the singleflight slot through the
// full stall.
//
// "Blocking" comes from the interprocedural summaries (analysis.Program):
// a callee is blocking when it, or anything it transitively calls, does
// pfs/fabric/mmapio I/O or a bare time.Sleep — so cache and reader
// helpers that merely wrap storage reads are recognized without being
// listed. The deliberate ctx-free compatibility wrappers (Query,
// ReadQuery, ...) take no context themselves, so delegating to
// context.Background() inside them is out of scope by construction.
var CtxFlow = &analysis.Analyzer{
	Name: "ctxflow",
	Doc: "a function receiving a context.Context must thread it into blocking callees " +
		"(pfs/fabric/cache ops, transitively): passing context.Background()/TODO() instead, or " +
		"never using the context while the body blocks, detaches cancellation; " +
		"waive with //batlint:ignore ctxflow <why>",
	Run: runCtxFlow,
}

func runCtxFlow(pass *analysis.Pass) error {
	if inScope(pass.Pkg.Path(), ctxFlowExempt...) {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			ctxParam := contextParam(pass.TypesInfo, fn)
			if ctxParam == nil {
				continue
			}
			checkCtxFlow(pass, fn, ctxParam)
		}
	}
	return nil
}

// contextParam returns the declared context.Context parameter object of
// fn, or nil. Blank (`_ context.Context`) parameters return nil: the
// signature already says, visibly, that cancellation ends here.
func contextParam(info *types.Info, fn *ast.FuncDecl) *types.Var {
	if fn.Type.Params == nil {
		return nil
	}
	for _, field := range fn.Type.Params.List {
		for _, name := range field.Names {
			if name.Name == "_" {
				continue
			}
			v, ok := info.Defs[name].(*types.Var)
			if ok && isContextType(v.Type()) {
				return v
			}
		}
	}
	return nil
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

func checkCtxFlow(pass *analysis.Pass, fn *ast.FuncDecl, ctxParam *types.Var) {
	ctxUsed := false
	sawBlocking := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == ctxParam {
			ctxUsed = true
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := calleeFunc(pass.TypesInfo, call)
		if callee == nil {
			return true
		}
		blocking := calleeBlocking(pass, callee)
		if blocking {
			sawBlocking = true
		}
		// Substitution: a fresh root context handed to a blocking callee
		// while the caller holds a real one.
		if blocking {
			sig := calleeSig(callee)
			for i := 0; i < sig.Params().Len() && i < len(call.Args); i++ {
				if !isContextType(sig.Params().At(i).Type()) {
					continue
				}
				arg := call.Args[i]
				if name := backgroundish(pass.TypesInfo, arg); name != "" {
					pass.ReportRangef(arg.Pos(), arg.End(),
						"%s receives a context but hands context.%s to blocking %s: the caller's "+
							"cancellation never reaches the wait; pass (or derive from) the caller's "+
							"context, or waive with //batlint:ignore ctxflow <why>",
						fn.Name.Name, name, callee.Name())
				}
			}
		}
		return true
	})
	// Dropping: the context is never consulted while the body blocks.
	if !ctxUsed && sawBlocking {
		pass.ReportRangef(fn.Name.Pos(), fn.Name.End(),
			"%s receives a context it never uses, yet its body blocks (pfs/fabric/cache ops): "+
				"cancellation is silently dropped; thread the context into the blocking calls, or "+
				"waive with //batlint:ignore ctxflow <why>",
			fn.Name.Name)
	}
}

// calleeBlocking reports whether a call to fn can block: base blocking
// packages (pfs, fabric, mmapio, time.Sleep) or any function whose
// interprocedural summary says it transitively reaches one.
func calleeBlocking(pass *analysis.Pass, fn *types.Func) bool {
	if fn.Pkg() != nil {
		path := fn.Pkg().Path()
		if path == "time" && fn.Name() == "Sleep" {
			return true
		}
		if inScope(path, "pfs", "fabric", "mmapio") {
			return true
		}
	}
	sum, ok := pass.Prog.SummaryOf(fn)
	return ok && sum.Blocking
}

// calleeSig returns fn's signature. (The go1.23 (*types.Func).Signature
// accessor is off-limits while the module declares go 1.22.)
func calleeSig(fn *types.Func) *types.Signature {
	return fn.Type().(*types.Signature)
}

// backgroundish returns "Background" or "TODO" when arg is a direct
// context.Background()/context.TODO() call, else "".
func backgroundish(info *types.Info, arg ast.Expr) string {
	call, ok := ast.Unparen(arg).(*ast.CallExpr)
	if !ok {
		return ""
	}
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
		return ""
	}
	if fn.Name() == "Background" || fn.Name() == "TODO" {
		return fn.Name()
	}
	return ""
}
