package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// This file is the per-function half of the interprocedural layer: a
// lightweight abstract interpreter that walks one function body in source
// order and produces a Summary — which results carry decoded-input taint,
// which parameters flow into narrowing sinks unguarded, which parameters
// the function validates, whether the function (transitively) blocks.
// callgraph.go drives it bottom-up over the call-graph SCCs to a fixpoint.
//
// The value domain is deliberately small: a taintMask per value, where bit
// 0 means "derived from untrusted decoded bytes" (binary.LittleEndian
// reads, varints, ReadAt-filled buffers, tainted struct fields, callees
// whose summaries say so) and bit i+1 means "depends on parameter i"
// (receiver first for methods). Parameter bits are what make one walk
// serve both roles: they turn into SinkParams ("callers must bound this
// argument") and Flows ("taint passes through") instead of findings.
//
// Sanitizers kill a mask: a dominating <,>,<=,>= comparison mentioning the
// value's printed form (the same positional heuristic the original local
// analyzer used), a call passing the value to a parameter the callee's
// summary marks validated, the builtin min with a bounded operand, and
// &/% against a constant. The approximations — printed-form matching,
// position as dominance, no branch sensitivity — are documented in
// DESIGN.md; they are exactly the original local heuristics, widened
// across calls.

// taintMask tracks provenance of one value: bit 0 = decoded-input taint,
// bit i+1 = depends on parameter i (receiver counts as parameter 0 of a
// method).
type taintMask uint64

const sourceBit taintMask = 1

// paramBit returns the mask bit for parameter index i (0-based, receiver
// first). Functions with more than 62 parameters lose tracking for the
// tail, which only costs precision.
func paramBit(i int) taintMask {
	if i < 0 || i >= 62 {
		return 0
	}
	return 1 << (uint(i) + 1)
}

// Flow records that taint entering at parameter Param leaves through
// result Result unguarded.
type Flow struct {
	Param  int `json:"p"`
	Result int `json:"r"`
}

// Summary is one function's interprocedural contract, computed bottom-up
// over call-graph SCCs (callgraph.go) and, in go vet mode, serialized
// through .vetx facts files so cross-package information survives the
// unitchecker protocol.
type Summary struct {
	// TaintedResults: bit i set when result i may carry decoded-input
	// taint with no dominating bound.
	TaintedResults uint32 `json:"t,omitempty"`
	// SinkParams: bit i set when parameter i reaches a narrowing
	// conversion (or a callee's sink parameter) with no dominating bound;
	// callers must bound the argument or the taint is live.
	SinkParams uint32 `json:"s,omitempty"`
	// ValidatedParams: bit i set when the function relationally bounds
	// parameter i (directly or by passing it to another validator) — the
	// validateX pattern. A call passing v to a validated parameter
	// sanitizes v at the call site.
	ValidatedParams uint32 `json:"v,omitempty"`
	// Flows: parameter→result taint passthroughs.
	Flows []Flow `json:"f,omitempty"`
	// Blocking: the function (transitively) performs a blocking
	// operation — pfs/fabric/mmapio I/O or a bare time.Sleep. The ctxflow
	// analyzer uses it to decide which callees must receive a context.
	Blocking bool `json:"b,omitempty"`
}

// mergeValidators unions the phase-1 (monotone) half of next into s,
// reporting whether anything changed.
func (s *Summary) mergeValidators(next Summary) bool {
	changed := false
	if next.ValidatedParams&^s.ValidatedParams != 0 {
		s.ValidatedParams |= next.ValidatedParams
		changed = true
	}
	if next.Blocking && !s.Blocking {
		s.Blocking = true
		changed = true
	}
	return changed
}

// mergeTaint unions the phase-2 half of next into s, reporting whether
// anything changed. Union-only merging keeps the fixpoint monotone.
func (s *Summary) mergeTaint(next Summary) bool {
	changed := false
	if next.TaintedResults&^s.TaintedResults != 0 {
		s.TaintedResults |= next.TaintedResults
		changed = true
	}
	if next.SinkParams&^s.SinkParams != 0 {
		s.SinkParams |= next.SinkParams
		changed = true
	}
	for _, f := range next.Flows {
		if !s.hasFlow(f) {
			s.Flows = append(s.Flows, f)
			changed = true
		}
	}
	return changed
}

func (s *Summary) hasFlow(f Flow) bool {
	for _, g := range s.Flows {
		if g == f {
			return true
		}
	}
	return false
}

// EventKind distinguishes the two taint-sink shapes the engine records.
type EventKind int

const (
	// EventNarrow: a decoded-input-tainted uint64 narrowed with no
	// dominating bound — the offset-wrap shape.
	EventNarrow EventKind = iota
	// EventCallSink: a decoded-input-tainted value passed, unbounded, to
	// a parameter the callee narrows without a guard.
	EventCallSink
)

// TaintEvent is one unsanitized source→sink flow, recorded during the
// final (post-fixpoint) walk for analyzers to report.
type TaintEvent struct {
	Kind   EventKind
	Pos    token.Pos
	End    token.Pos
	Expr   string // printed form of the tainted value
	To     string // EventNarrow: destination type
	Callee string // EventCallSink: callee name
	Param  string // EventCallSink: the sink parameter's name
}

// sigOf returns fn's signature. (The go1.23 (*types.Func).Signature
// accessor is off-limits while the module declares go 1.22.)
func sigOf(fn *types.Func) *types.Signature {
	return fn.Type().(*types.Signature)
}

// funcKey is the cross-object-space identity of a function: the same
// function type-checked from source and re-imported from export data
// yields different *types.Func objects but the same FullName.
func funcKey(fn *types.Func) string {
	if fn == nil {
		return ""
	}
	return fn.Origin().FullName()
}

// fieldKeyOf builds the identity of a struct field as seen through a
// named type: "pkgpath.Type.field". Keying by the type at the use site
// (rather than the field's declaring struct) mis-files promoted fields
// from embedded structs, which costs precision, never findings.
func fieldKeyOf(recv types.Type, field string) string {
	t := recv
	for {
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			continue
		}
		break
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return ""
	}
	return named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + field
}

// sanitizeEvt marks the printed form of a value as bounded from pos on.
type sanitizeEvt struct {
	form string
	pos  token.Pos
}

// flowWalk interprets one function body.
type flowWalk struct {
	prog   *Program
	pkg    *Package
	decl   *ast.FuncDecl
	params []*types.Var
	vars   map[string]taintMask
	sans   []sanitizeEvt
	tuples map[*ast.CallExpr][]taintMask
	sum    Summary // candidate summary this walk computes
	record bool    // final pass: emit TaintEvents
	// changedFields reports back that a new global field taint was found.
	changedFields bool
}

// walkFunc runs one abstract interpretation of pf's body and returns the
// candidate summary (merged by the caller) plus whether global field
// state changed.
func (p *Program) walkFunc(pf *progFunc, record bool) (Summary, bool) {
	w := &flowWalk{
		prog:   p,
		pkg:    pf.pkg,
		decl:   pf.decl,
		vars:   map[string]taintMask{},
		tuples: map[*ast.CallExpr][]taintMask{},
		record: record,
	}
	sig := sigOf(pf.fn)
	if r := sig.Recv(); r != nil {
		w.params = append(w.params, r)
	}
	for i := 0; i < sig.Params().Len(); i++ {
		w.params = append(w.params, sig.Params().At(i))
	}
	w.stmt(pf.decl.Body)
	return w.sum, w.changedFields
}

func (w *flowWalk) paramIndex(v *types.Var) int {
	for i, p := range w.params {
		if p == v {
			return i
		}
	}
	return -1
}

func (w *flowWalk) san(form string, pos token.Pos) {
	w.sans = append(w.sans, sanitizeEvt{form: form, pos: pos})
}

func (w *flowWalk) sanitizedBefore(form string, pos token.Pos) bool {
	for _, s := range w.sans {
		if s.pos < pos && s.form == form {
			return true
		}
	}
	return false
}

// validateIfParam credits a relational guard (or validator call) on a bare
// parameter to the function's ValidatedParams.
func (w *flowWalk) validateIfParam(e ast.Expr) {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return
	}
	obj := w.pkg.Info.Uses[id]
	v, ok := obj.(*types.Var)
	if !ok {
		return
	}
	if i := w.paramIndex(v); i >= 0 && i < 32 {
		w.sum.ValidatedParams |= 1 << uint(i)
	}
}

func (w *flowWalk) identMask(id *ast.Ident) taintMask {
	if id.Name == "_" {
		return 0
	}
	if m, ok := w.vars[id.Name]; ok {
		return m
	}
	obj := w.pkg.Info.Uses[id]
	if obj == nil {
		obj = w.pkg.Info.Defs[id]
	}
	if v, ok := obj.(*types.Var); ok {
		if i := w.paramIndex(v); i >= 0 {
			return paramBit(i)
		}
	}
	return 0
}

func (w *flowWalk) isConstExpr(e ast.Expr) bool {
	tv, ok := w.pkg.Info.Types[e]
	return ok && tv.Value != nil
}

// expr computes the taint mask of e, recording guards, sinks, blocking
// calls, and field writes it encounters on the way.
func (w *flowWalk) expr(e ast.Expr) taintMask {
	switch e := e.(type) {
	case nil:
		return 0
	case *ast.Ident:
		return w.identMask(e)
	case *ast.ParenExpr:
		return w.expr(e.X)
	case *ast.BasicLit:
		return 0
	case *ast.SelectorExpr:
		if w.isConstExpr(e) {
			return 0
		}
		form := types.ExprString(e)
		if m, ok := w.vars[form]; ok {
			return m // locally (re)assigned, e.g. clamped in place
		}
		m := w.expr(e.X)
		if sel, ok := w.pkg.Info.Selections[e]; ok && sel.Kind() == types.FieldVal {
			key := fieldKeyOf(sel.Recv(), e.Sel.Name)
			if key != "" && w.prog.taintedFields[key] && !w.prog.checkedFields[key] {
				m |= sourceBit
			}
		}
		return m
	case *ast.StarExpr:
		return w.expr(e.X)
	case *ast.UnaryExpr:
		return w.expr(e.X)
	case *ast.IndexExpr:
		w.expr(e.Index)
		return w.expr(e.X) // an element of a tainted slice is tainted
	case *ast.IndexListExpr:
		return w.expr(e.X) // generic instantiation
	case *ast.SliceExpr:
		w.expr(e.Low)
		w.expr(e.High)
		w.expr(e.Max)
		return w.expr(e.X)
	case *ast.TypeAssertExpr:
		return w.expr(e.X)
	case *ast.CompositeLit:
		return w.compositeLit(e)
	case *ast.FuncLit:
		w.stmt(e.Body) // shares vars/sanitizers: positional, like the rest
		return 0
	case *ast.BinaryExpr:
		return w.binary(e)
	case *ast.CallExpr:
		return w.call(e)
	case *ast.KeyValueExpr:
		w.expr(e.Key)
		return w.expr(e.Value)
	}
	return 0
}

func (w *flowWalk) binary(e *ast.BinaryExpr) taintMask {
	mx, my := w.expr(e.X), w.expr(e.Y)
	switch e.Op {
	case token.LSS, token.GTR, token.LEQ, token.GEQ:
		// A relational comparison is the canonical sanitizer: both
		// operands count as bounded from here on (the original local
		// guard heuristic, kept verbatim).
		w.san(types.ExprString(ast.Unparen(e.X)), e.Pos())
		w.san(types.ExprString(ast.Unparen(e.Y)), e.Pos())
		w.validateIfParam(e.X)
		w.validateIfParam(e.Y)
		return 0
	case token.EQL, token.NEQ, token.LAND, token.LOR:
		return 0
	case token.AND, token.REM:
		// x & const and x % const bound the result by the constant.
		if w.isConstExpr(e.X) || w.isConstExpr(e.Y) {
			return 0
		}
	}
	return mx | my
}

func (w *flowWalk) compositeLit(e *ast.CompositeLit) taintMask {
	var m taintMask
	var st *types.Struct
	var named types.Type
	if tv, ok := w.pkg.Info.Types[e]; ok {
		named = tv.Type
		if s, ok := tv.Type.Underlying().(*types.Struct); ok {
			st = s
		}
	}
	for i, el := range e.Elts {
		if kv, ok := el.(*ast.KeyValueExpr); ok {
			vm := w.expr(kv.Value)
			m |= vm
			if st != nil {
				if id, ok := kv.Key.(*ast.Ident); ok {
					w.fieldWrite(fieldKeyOf(named, id.Name), vm)
				}
			}
			continue
		}
		vm := w.expr(el)
		m |= vm
		if st != nil && i < st.NumFields() {
			w.fieldWrite(fieldKeyOf(named, st.Field(i).Name()), vm)
		}
	}
	return m
}

// fieldWrite records a decoded-input-tainted store into a struct field;
// the global field set feeds the outer fixpoint in callgraph.go.
func (w *flowWalk) fieldWrite(key string, m taintMask) {
	if key == "" || m&sourceBit == 0 {
		return
	}
	if !w.prog.taintedFields[key] {
		w.prog.taintedFields[key] = true
		w.changedFields = true
	}
}

// sourceFuncs maps encoding/binary decode entry points to the taint masks
// of their results.
func binarySourceMasks(name string) ([]taintMask, bool) {
	switch name {
	case "Uint16", "Uint32", "Uint64":
		return []taintMask{sourceBit}, true
	case "Uvarint", "Varint":
		return []taintMask{sourceBit, 0}, true
	case "ReadUvarint", "ReadVarint":
		return []taintMask{sourceBit, 0}, true
	}
	return nil, false
}

// bufferFillers taint the []byte argument they fill with raw input.
// Matching by name covers io.ReaderAt/io.Reader implementations and the
// pfs context-aware wrappers without needing their source.
func bufferFillArg(name string, nargs int) int {
	switch name {
	case "Read", "ReadAt", "ReadAtCtx", "ReadAtContext":
		if nargs >= 1 {
			return 0
		}
	case "ReadFull":
		if nargs >= 2 {
			return 1
		}
	}
	return -1
}

// blockingPkgElems are the path elements whose calls are blocking by
// definition: storage and collective I/O.
var blockingPkgElems = map[string]bool{"pfs": true, "fabric": true, "mmapio": true}

func calleeIsBaseBlocking(fn *types.Func) bool {
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	path := fn.Pkg().Path()
	if path == "time" && fn.Name() == "Sleep" {
		return true
	}
	for _, seg := range strings.Split(path, "/") {
		if blockingPkgElems[seg] {
			return true
		}
	}
	return false
}

// staticCallee resolves the called *types.Func, or nil for indirect calls
// and builtins.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.IndexExpr: // generic instantiation f[T](...)
		if base, ok := fun.X.(*ast.Ident); ok {
			id = base
		}
	case *ast.IndexListExpr:
		if base, ok := fun.X.(*ast.Ident); ok {
			id = base
		}
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// argExprFor maps callee parameter index i (receiver first for methods)
// back to the syntactic argument at the call site, or nil.
func argExprFor(call *ast.CallExpr, hasRecv bool, i int) ast.Expr {
	if hasRecv {
		if i == 0 {
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				return sel.X
			}
			return nil
		}
		i--
	}
	if i < len(call.Args) {
		return call.Args[i]
	}
	if n := len(call.Args); n > 0 {
		return call.Args[n-1] // variadic tail
	}
	return nil
}

func (w *flowWalk) call(call *ast.CallExpr) taintMask {
	// Conversion: the narrowing sink lives here.
	if tv, ok := w.pkg.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		m := w.expr(call.Args[0])
		if to, _, narrowing := NarrowingFromUint64(w.pkg.Info, call); narrowing {
			return w.narrowSink(call, to, m)
		}
		return m
	}
	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := w.pkg.Info.Uses[id].(*types.Builtin); ok {
			return w.builtin(b.Name(), call)
		}
	}
	callee := staticCallee(w.pkg.Info, call)
	hasRecv := callee != nil && sigOf(callee).Recv() != nil

	// Evaluate receiver and arguments in order, collecting masks aligned
	// with the callee's receiver-first parameter indexing.
	var argMasks []taintMask
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		m := w.expr(sel.X)
		if hasRecv {
			argMasks = append(argMasks, m)
		}
	}
	for _, a := range call.Args {
		argMasks = append(argMasks, w.expr(a))
	}
	if callee == nil {
		return 0
	}

	// Decode sources: encoding/binary readers.
	if pkgOf(callee) == "encoding/binary" {
		if masks, ok := binarySourceMasks(callee.Name()); ok {
			w.tuples[call] = masks
			return masks[0]
		}
	}
	// Raw-input fills: r.ReadAt(buf, off) taints buf.
	if ai := bufferFillArg(callee.Name(), len(call.Args)); ai >= 0 {
		arg := call.Args[ai]
		if isByteSlice(w.pkg.Info, arg) {
			form := types.ExprString(ast.Unparen(arg))
			w.vars[form] |= sourceBit
		}
	}

	if calleeIsBaseBlocking(callee) {
		w.sum.Blocking = true
	}
	sum, known := w.prog.summaryByKey(funcKey(callee))
	if known && sum.Blocking {
		w.sum.Blocking = true
	}
	if !known {
		return 0
	}

	// A call into a validator sanitizes the argument from here on and
	// propagates validation to our own bare parameters.
	for i := range argMasks {
		if i < 32 && sum.ValidatedParams&(1<<uint(i)) != 0 {
			if arg := argExprFor(call, hasRecv, i); arg != nil {
				w.san(types.ExprString(ast.Unparen(arg)), call.Pos())
				w.validateIfParam(arg)
			}
		}
	}
	// A call into a sink parameter is a sink for whatever taint the
	// argument carries.
	for i := range argMasks {
		if i < 32 && sum.SinkParams&(1<<uint(i)) != 0 {
			arg := argExprFor(call, hasRecv, i)
			w.callSink(call, callee, hasRecv, i, arg, argMasks[i])
		}
	}
	// Result masks from the callee's summary.
	nres := sigOf(callee).Results().Len()
	masks := make([]taintMask, max(nres, 1))
	for i := 0; i < nres && i < 32; i++ {
		if sum.TaintedResults&(1<<uint(i)) != 0 {
			masks[i] |= sourceBit
		}
	}
	for _, f := range sum.Flows {
		if f.Param < len(argMasks) && f.Result < len(masks) {
			masks[f.Result] |= argMasks[f.Param]
		}
	}
	if nres > 1 {
		w.tuples[call] = masks
	}
	return masks[0]
}

func (w *flowWalk) builtin(name string, call *ast.CallExpr) taintMask {
	var m taintMask
	anyBounded := false
	for _, a := range call.Args {
		am := w.expr(a)
		m |= am
		if am == 0 {
			anyBounded = true
		}
	}
	switch name {
	case "len", "cap":
		return 0
	case "make", "new":
		// A tainted length sizes the container; it does not taint the
		// (zeroed) contents.
		return 0
	case "min":
		// min(x, bounded) clamps x below the bounded operand.
		if anyBounded {
			return 0
		}
	case "append":
		return m
	}
	return m
}

// narrowSink handles a narrowing conversion of value with mask m: report
// decoded-input taint (final pass), promote parameter taint into
// SinkParams, and treat the result as accounted for.
func (w *flowWalk) narrowSink(call *ast.CallExpr, to string, m taintMask) taintMask {
	if m == 0 {
		return 0
	}
	arg := ast.Unparen(call.Args[0])
	form := types.ExprString(arg)
	if w.sanitizedBefore(form, call.Pos()) {
		return 0
	}
	if m&sourceBit != 0 && w.record {
		w.prog.addEvent(w.pkg.Path, TaintEvent{
			Kind: EventNarrow,
			Pos:  call.Pos(),
			End:  call.End(),
			Expr: form,
			To:   to,
		})
	}
	w.promoteSinkParams(m)
	return 0
}

func (w *flowWalk) callSink(call *ast.CallExpr, callee *types.Func, hasRecv bool, i int, arg ast.Expr, m taintMask) {
	if m == 0 || arg == nil {
		return
	}
	form := types.ExprString(ast.Unparen(arg))
	if w.sanitizedBefore(form, call.Pos()) {
		return
	}
	if m&sourceBit != 0 && w.record {
		w.prog.addEvent(w.pkg.Path, TaintEvent{
			Kind:   EventCallSink,
			Pos:    arg.Pos(),
			End:    arg.End(),
			Expr:   form,
			Callee: callee.Name(),
			Param:  paramName(callee, hasRecv, i),
		})
	}
	w.promoteSinkParams(m)
}

func (w *flowWalk) promoteSinkParams(m taintMask) {
	for i := range w.params {
		if i < 32 && m&paramBit(i) != 0 {
			w.sum.SinkParams |= 1 << uint(i)
		}
	}
}

func paramName(fn *types.Func, hasRecv bool, i int) string {
	sig := sigOf(fn)
	if hasRecv {
		if i == 0 {
			if r := sig.Recv(); r != nil && r.Name() != "" {
				return r.Name()
			}
			return "recv"
		}
		i--
	}
	if i < sig.Params().Len() {
		if n := sig.Params().At(i).Name(); n != "" {
			return n
		}
	}
	return "_"
}

func isByteSlice(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	sl, ok := tv.Type.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Uint8
}

func pkgOf(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

// --- statements ---

func (w *flowWalk) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, st := range s.List {
			w.stmt(st)
		}
	case *ast.ExprStmt:
		w.expr(s.X)
	case *ast.AssignStmt:
		w.assign(s)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					var m taintMask
					if i < len(vs.Values) {
						m = w.expr(vs.Values[i])
					}
					if name.Name != "_" {
						w.vars[name.Name] = m
					}
				}
			}
		}
	case *ast.ReturnStmt:
		w.ret(s)
	case *ast.IfStmt:
		w.stmt(s.Init)
		w.expr(s.Cond)
		w.stmt(s.Body)
		w.stmt(s.Else)
	case *ast.ForStmt:
		w.stmt(s.Init)
		w.expr(s.Cond)
		w.stmt(s.Post)
		w.stmt(s.Body)
	case *ast.RangeStmt:
		m := w.expr(s.X)
		if id, ok := s.Key.(*ast.Ident); ok && id.Name != "_" {
			w.vars[id.Name] = 0 // indexes/keys are positions, not payload
		}
		if id, ok := s.Value.(*ast.Ident); ok && id.Name != "_" {
			w.vars[id.Name] = m
		}
		w.stmt(s.Body)
	case *ast.SwitchStmt:
		w.stmt(s.Init)
		w.expr(s.Tag)
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				for _, e := range cc.List {
					w.expr(e)
				}
				for _, st := range cc.Body {
					w.stmt(st)
				}
			}
		}
	case *ast.TypeSwitchStmt:
		w.stmt(s.Init)
		w.stmt(s.Assign)
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				for _, st := range cc.Body {
					w.stmt(st)
				}
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				w.stmt(cc.Comm)
				for _, st := range cc.Body {
					w.stmt(st)
				}
			}
		}
	case *ast.DeferStmt:
		w.expr(s.Call)
	case *ast.GoStmt:
		w.expr(s.Call)
	case *ast.SendStmt:
		w.expr(s.Chan)
		w.expr(s.Value)
	case *ast.IncDecStmt:
		w.expr(s.X)
	case *ast.LabeledStmt:
		w.stmt(s.Stmt)
	}
}

func (w *flowWalk) assign(s *ast.AssignStmt) {
	var masks []taintMask
	if len(s.Rhs) == 1 && len(s.Lhs) > 1 {
		m := w.expr(s.Rhs[0])
		if call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr); ok {
			if tm, ok := w.tuples[call]; ok {
				masks = tm
			}
		}
		if masks == nil {
			masks = make([]taintMask, len(s.Lhs))
			for i := range masks {
				masks[i] = m
			}
		}
	} else {
		for _, r := range s.Rhs {
			masks = append(masks, w.expr(r))
		}
	}
	for i, l := range s.Lhs {
		var m taintMask
		if i < len(masks) {
			m = masks[i]
		}
		if s.Tok != token.ASSIGN && s.Tok != token.DEFINE {
			// Op-assign (+=, |=, <<=, ...) accumulates.
			m |= w.lhsMask(l)
		}
		w.assignTo(l, m)
	}
}

func (w *flowWalk) lhsMask(l ast.Expr) taintMask {
	return w.expr(l)
}

func (w *flowWalk) assignTo(l ast.Expr, m taintMask) {
	switch l := ast.Unparen(l).(type) {
	case *ast.Ident:
		if l.Name != "_" {
			w.vars[l.Name] = m
		}
	case *ast.SelectorExpr:
		w.expr(l.X)
		form := types.ExprString(l)
		w.vars[form] = m
		if sel, ok := w.pkg.Info.Selections[l]; ok && sel.Kind() == types.FieldVal {
			w.fieldWrite(fieldKeyOf(sel.Recv(), l.Sel.Name), m)
		}
	case *ast.IndexExpr:
		w.expr(l.Index)
		base := ast.Unparen(l.X)
		form := types.ExprString(base)
		w.vars[form] |= m // weak update: one element taints the slice
	case *ast.StarExpr:
		form := types.ExprString(ast.Unparen(l.X))
		w.vars[form] = m
	}
}

func (w *flowWalk) ret(s *ast.ReturnStmt) {
	results := s.Results
	if len(results) == 0 {
		// Bare return: consult the named results.
		if w.decl.Type.Results == nil {
			return
		}
		i := 0
		for _, f := range w.decl.Type.Results.List {
			for _, name := range f.Names {
				m := w.vars[name.Name]
				w.recordResult(i, m, name.Name, s.Pos())
				i++
			}
			if len(f.Names) == 0 {
				i++
			}
		}
		return
	}
	if len(results) == 1 {
		if call, ok := ast.Unparen(results[0]).(*ast.CallExpr); ok {
			m := w.expr(results[0])
			if tm, ok := w.tuples[call]; ok {
				for i, rm := range tm {
					w.recordResult(i, rm, types.ExprString(ast.Unparen(results[0])), s.Pos())
				}
				return
			}
			w.recordResult(0, m, types.ExprString(ast.Unparen(results[0])), s.Pos())
			return
		}
	}
	for i, r := range results {
		m := w.expr(r)
		w.recordResult(i, m, types.ExprString(ast.Unparen(r)), s.Pos())
	}
}

func (w *flowWalk) recordResult(i int, m taintMask, form string, pos token.Pos) {
	if i >= 32 || m == 0 {
		return
	}
	if w.sanitizedBefore(form, pos) {
		return
	}
	if m&sourceBit != 0 {
		w.sum.TaintedResults |= 1 << uint(i)
	}
	for pi := range w.params {
		if m&paramBit(pi) != 0 {
			f := Flow{Param: pi, Result: i}
			if !w.sum.hasFlow(f) {
				w.sum.Flows = append(w.sum.Flows, f)
			}
		}
	}
}
