// Package analysis is a self-contained miniature of the go/analysis
// framework: an Analyzer is a named check that runs over one type-checked
// package and reports position-anchored diagnostics. The repo cannot vendor
// golang.org/x/tools, so this package supplies the same core contract
// (Analyzer / Pass / Diagnostic) plus the two pieces x/tools keeps in
// sibling packages: a module-aware package loader (load.go) built on
// `go list -export` and the compiler's export data, and the
// //batlint:ignore waiver filter (waiver.go) that makes every suppression
// carry an auditable justification. On top of the per-package contract
// sits an interprocedural layer (callgraph.go, summary.go): per-function
// summaries computed to fixpoint over call-graph SCCs, exposed to
// analyzers via Pass.Prog and serialized as facts through go vet's .vetx
// files; DESIGN.md §14 describes it.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer is one named invariant check.
type Analyzer struct {
	// Name identifies the analyzer in output, CLI flags, and
	// //batlint:ignore waivers. Lowercase, no spaces.
	Name string
	// Doc is the one-paragraph description shown by `batlint -list`.
	Doc string
	// Run inspects one package via pass and reports findings through
	// pass.Report/Reportf. Returning an error aborts the whole run (use it
	// for internal failures, not findings).
	Run func(pass *Pass) error
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Prog is the interprocedural view over every package in this run:
	// per-function summaries at fixpoint and the recorded source→sink
	// taint events. Always non-nil when set by the runner.
	Prog *Program

	// Report delivers one diagnostic. Set by the runner.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// ReportRangef reports a formatted diagnostic spanning [pos, end); the end
// position widens the window a //batlint:ignore waiver can sit on when
// the flagged expression spans multiple lines.
func (p *Pass) ReportRangef(pos, end token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, End: end, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding inside a package.
type Diagnostic struct {
	Pos     token.Pos
	End     token.Pos // optional: end of the flagged expression
	Message string
}

// Finding is a diagnostic resolved to a concrete file position and tagged
// with the analyzer that produced it — the unit batlint prints and the
// waiver filter suppresses.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
	// EndLine is the last line of the flagged expression (== Pos.Line for
	// single-line findings); a waiver anywhere in [Pos.Line-1, EndLine]
	// covers the finding.
	EndLine int
	// Waived marks a finding suppressed by a //batlint:ignore directive.
	// Run returns waived findings too (for -json and audits); callers
	// gate exit status on the unwaived ones.
	Waived bool
	// WaiverReason is the justification of the covering waiver.
	WaiverReason string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Pos, f.Analyzer, f.Message)
}
