// Package analysis is a self-contained miniature of the go/analysis
// framework: an Analyzer is a named check that runs over one type-checked
// package and reports position-anchored diagnostics. The repo cannot vendor
// golang.org/x/tools, so this package supplies the same core contract
// (Analyzer / Pass / Diagnostic) plus the two pieces x/tools keeps in
// sibling packages: a module-aware package loader (load.go) built on
// `go list -export` and the compiler's export data, and the
// //batlint:ignore waiver filter (waiver.go) that makes every suppression
// carry an auditable justification.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer is one named invariant check.
type Analyzer struct {
	// Name identifies the analyzer in output, CLI flags, and
	// //batlint:ignore waivers. Lowercase, no spaces.
	Name string
	// Doc is the one-paragraph description shown by `batlint -list`.
	Doc string
	// Run inspects one package via pass and reports findings through
	// pass.Report/Reportf. Returning an error aborts the whole run (use it
	// for internal failures, not findings).
	Run func(pass *Pass) error
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one diagnostic. Set by the runner.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding inside a package.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Finding is a diagnostic resolved to a concrete file position and tagged
// with the analyzer that produced it — the unit batlint prints and the
// waiver filter suppresses.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Pos, f.Analyzer, f.Message)
}
