package analysis

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Waivers: a finding is suppressed by a directive comment
//
//	//batlint:ignore <analyzer> <justification>
//
// placed at the end of the flagged line, on its own line immediately
// above, or — for findings whose flagged expression spans several lines —
// on any line the expression covers. The justification is mandatory — a
// bare //batlint:ignore is itself reported — so every suppression in the
// tree records why the invariant does not apply (the audit trail
// DESIGN.md §9 describes). <analyzer> may be a comma-separated list.
const waiverPrefix = "batlint:ignore"

type waiver struct {
	analyzers []string
	reason    string
	line      int
	used      bool
}

// Waiver is one parsed //batlint:ignore directive, as inventoried by
// batlint -waivers. Malformed directives (no analyzer or no
// justification) carry Malformed=true and an empty analyzer list.
type Waiver struct {
	File      string
	Line      int
	Analyzers []string
	Reason    string
	Malformed bool
}

// CollectWaivers inventories every //batlint:ignore directive in pkgs,
// sorted by file and line — the auditable ledger of live suppressions.
func CollectWaivers(pkgs []*Package) []Waiver {
	var out []Waiver
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text, ok := directiveText(c)
					if !ok {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					fields := strings.Fields(text)
					w := Waiver{File: pos.Filename, Line: pos.Line}
					if len(fields) < 2 {
						w.Malformed = true
						w.Reason = text
					} else {
						w.Analyzers = strings.Split(fields[0], ",")
						w.Reason = strings.Join(fields[1:], " ")
					}
					out = append(out, w)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		return out[i].Line < out[j].Line
	})
	return out
}

// applyWaivers filters one package's findings through its waiver comments:
// covered findings come back marked Waived (with the justification) rather
// than dropped, so machine-readable output can show them. Malformed
// directives (no analyzer name or no justification) become findings
// themselves, attributed to the pseudo-analyzer "waiver". ran holds the
// analyzers that actually executed: staleness is only judged for waivers
// naming at least one of them, so disabling an analyzer on the command
// line does not mark its waivers stale.
func applyWaivers(pkg *Package, diags []Finding, ran map[string]bool) []Finding {
	// file name -> waivers in that file
	waivers := map[string][]*waiver{}
	var out []Finding
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := directiveText(c)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				fields := strings.Fields(text)
				if len(fields) < 2 {
					out = append(out, Finding{
						Analyzer: "waiver",
						Pos:      pos,
						EndLine:  pos.Line,
						Message:  "//batlint:ignore needs an analyzer name and a justification: //batlint:ignore <analyzer> <why>",
					})
					continue
				}
				w := &waiver{
					analyzers: strings.Split(fields[0], ","),
					reason:    strings.Join(fields[1:], " "),
					line:      pos.Line,
				}
				waivers[pos.Filename] = append(waivers[pos.Filename], w)
			}
		}
	}
	for _, d := range diags {
		if w := matchWaiver(waivers[d.Pos.Filename], d); w != nil {
			w.used = true
			d.Waived = true
			d.WaiverReason = w.reason
		}
		out = append(out, d)
	}
	// An unmatched waiver is stale: the finding it excused is gone, so the
	// justification no longer documents anything. Surfacing it keeps the
	// audit trail honest.
	for file, ws := range waivers {
		for _, w := range ws {
			ranAny := false
			for _, a := range w.analyzers {
				if ran[a] {
					ranAny = true
				}
			}
			if !w.used && ranAny {
				out = append(out, Finding{
					Analyzer: "waiver",
					Pos:      positionOnLine(pkg, file, w.line),
					EndLine:  w.line,
					Message:  "stale //batlint:ignore: no " + strings.Join(w.analyzers, ",") + " finding covers this line",
				})
			}
		}
	}
	return out
}

// directiveText returns the payload after //batlint:ignore, reporting ok
// only for comments that are the directive.
func directiveText(c *ast.Comment) (string, bool) {
	text := strings.TrimPrefix(c.Text, "//")
	text = strings.TrimSpace(text)
	if !strings.HasPrefix(text, waiverPrefix) {
		return "", false
	}
	return strings.TrimSpace(strings.TrimPrefix(text, waiverPrefix)), true
}

// matchWaiver finds a waiver covering the finding: same analyzer, same
// file, on any line from the one above the finding through the end of the
// flagged expression. The lower bound keeps the classic waiver-above
// idiom working; the upper bound covers findings reported at an inner
// expression whose statement spans multiple lines, where gofmt pins the
// directive to a later line than the reported position.
func matchWaiver(ws []*waiver, d Finding) *waiver {
	last := d.EndLine
	if last < d.Pos.Line {
		last = d.Pos.Line
	}
	for _, w := range ws {
		if w.line < d.Pos.Line-1 || w.line > last {
			continue
		}
		for _, a := range w.analyzers {
			if a == d.Analyzer {
				return w
			}
		}
	}
	return nil
}

// positionOnLine synthesizes a Position for a line in file (waiver comments
// do not retain their token.Pos once collected).
func positionOnLine(pkg *Package, file string, line int) token.Position {
	return token.Position{Filename: file, Line: line, Column: 1}
}
