package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Waivers: a finding is suppressed by a directive comment
//
//	//batlint:ignore <analyzer> <justification>
//
// placed either at the end of the flagged line or on its own line
// immediately above. The justification is mandatory — a bare
// //batlint:ignore is itself reported — so every suppression in the tree
// records why the invariant does not apply (the audit trail DESIGN.md §9
// describes). <analyzer> may be a comma-separated list.
const waiverPrefix = "batlint:ignore"

type waiver struct {
	analyzers []string
	reason    string
	line      int
	used      bool
}

// applyWaivers filters one package's findings through its waiver comments.
// Malformed directives (no analyzer name or no justification) become
// findings themselves, attributed to the pseudo-analyzer "waiver". ran
// holds the analyzers that actually executed: staleness is only judged for
// waivers naming at least one of them, so disabling an analyzer on the
// command line does not mark its waivers stale.
func applyWaivers(pkg *Package, diags []Finding, ran map[string]bool) []Finding {
	// file name -> waivers in that file
	waivers := map[string][]*waiver{}
	var out []Finding
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := directiveText(c)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				fields := strings.Fields(text)
				if len(fields) < 2 {
					out = append(out, Finding{
						Analyzer: "waiver",
						Pos:      pos,
						Message:  "//batlint:ignore needs an analyzer name and a justification: //batlint:ignore <analyzer> <why>",
					})
					continue
				}
				w := &waiver{
					analyzers: strings.Split(fields[0], ","),
					reason:    strings.Join(fields[1:], " "),
					line:      pos.Line,
				}
				waivers[pos.Filename] = append(waivers[pos.Filename], w)
			}
		}
	}
	for _, d := range diags {
		if w := matchWaiver(waivers[d.Pos.Filename], d); w != nil {
			w.used = true
			continue
		}
		out = append(out, d)
	}
	// An unmatched waiver is stale: the finding it excused is gone, so the
	// justification no longer documents anything. Surfacing it keeps the
	// audit trail honest.
	for file, ws := range waivers {
		for _, w := range ws {
			ranAny := false
			for _, a := range w.analyzers {
				if ran[a] {
					ranAny = true
				}
			}
			if !w.used && ranAny {
				out = append(out, Finding{
					Analyzer: "waiver",
					Pos:      positionOnLine(pkg, file, w.line),
					Message:  "stale //batlint:ignore: no " + strings.Join(w.analyzers, ",") + " finding on this or the next line",
				})
			}
		}
	}
	return out
}

// directiveText returns the payload after //batlint:ignore, reporting ok
// only for comments that are the directive.
func directiveText(c *ast.Comment) (string, bool) {
	text := strings.TrimPrefix(c.Text, "//")
	text = strings.TrimSpace(text)
	if !strings.HasPrefix(text, waiverPrefix) {
		return "", false
	}
	return strings.TrimSpace(strings.TrimPrefix(text, waiverPrefix)), true
}

// matchWaiver finds a waiver covering the finding: same analyzer, same file,
// on the finding's line or the line above it.
func matchWaiver(ws []*waiver, d Finding) *waiver {
	for _, w := range ws {
		if w.line != d.Pos.Line && w.line != d.Pos.Line-1 {
			continue
		}
		for _, a := range w.analyzers {
			if a == d.Analyzer {
				return w
			}
		}
	}
	return nil
}

// positionOnLine synthesizes a Position for a line in file (waiver comments
// do not retain their token.Pos once collected).
func positionOnLine(pkg *Package, file string, line int) token.Position {
	return token.Position{Filename: file, Line: line, Column: 1}
}
