package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// waiverSrc exercises every waiver shape against a dummy analyzer that
// flags each function declaration.
const waiverSrc = `package w

func a() int { return 1 } //batlint:ignore dummy covered by a same-line waiver

//batlint:ignore dummy covered by a line-above waiver
func b() int { return 2 }

func c() int { return 3 } //batlint:ignore othercheck names a different analyzer

func d() int { return 4 } //batlint:ignore

//batlint:ignore dummy stale: nothing on this or the next line is flagged

//batlint:ignore disabledcheck not stale: its analyzer did not run
`

func checkOne(t *testing.T, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "w.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	conf := types.Config{}
	tpkg, err := conf.Check("w", fset, []*ast.File{f}, &types.Info{})
	if err != nil {
		t.Fatal(err)
	}
	return &Package{Path: "w", Fset: fset, Files: []*ast.File{f}, Types: tpkg, Info: &types.Info{}}
}

func TestWaivers(t *testing.T) {
	pkg := checkOne(t, waiverSrc)

	dummy := &Analyzer{
		Name: "dummy",
		Doc:  "flags every function declaration",
		Run: func(pass *Pass) error {
			for _, file := range pass.Files {
				for _, d := range file.Decls {
					if fd, ok := d.(*ast.FuncDecl); ok {
						pass.Reportf(fd.Pos(), "flagged %s", fd.Name.Name)
					}
				}
			}
			return nil
		},
	}

	findings, err := Run([]*Package{pkg}, []*Analyzer{dummy})
	if err != nil {
		t.Fatal(err)
	}

	var live, waived []string
	for _, fd := range findings {
		if fd.Waived {
			if fd.WaiverReason == "" {
				t.Errorf("waived finding %q has no justification attached", fd.Message)
			}
			waived = append(waived, fd.Analyzer+": "+fd.Message)
			continue
		}
		live = append(live, fd.Analyzer+": "+fd.Message)
	}
	// a and b are suppressed by valid waivers but still reported, marked
	// Waived, so -json can show them.
	wantWaived := []string{
		"dummy: flagged a",
		"dummy: flagged b",
	}
	if len(waived) != len(wantWaived) {
		t.Fatalf("got %d waived findings, want %d:\n%s", len(waived), len(wantWaived), strings.Join(waived, "\n"))
	}
	for i, w := range wantWaived {
		if waived[i] != w {
			t.Errorf("waived finding %d = %q, want %q", i, waived[i], w)
		}
	}
	wantLive := []string{
		// c's waiver names the wrong analyzer and d's has no analyzer at
		// all, so both survive.
		"dummy: flagged c",
		"dummy: flagged d",
		// d's bare directive is malformed.
		"waiver: //batlint:ignore needs an analyzer name and a justification",
		// The dummy waiver with no matching finding is stale; the
		// disabledcheck one is ignored because that analyzer never ran.
		"waiver: stale //batlint:ignore: no dummy finding",
	}
	if len(live) != len(wantLive) {
		t.Fatalf("got %d live findings, want %d:\n%s", len(live), len(wantLive), strings.Join(live, "\n"))
	}
	for i, w := range wantLive {
		if !strings.HasPrefix(live[i], w) {
			t.Errorf("live finding %d = %q, want prefix %q", i, live[i], w)
		}
	}
}

// multilineSrc has one statement per function whose expression spans three
// lines; the directive sits at the end of the expression, below the line
// the diagnostic is reported on.
const multilineSrc = `package w

func widen(ns []int) (total int) {
	for _, n := range ns {
		total +=
			n *
				2 //batlint:ignore spans directive inside the flagged expression's span
	}
	return total
}

func widenBare(ns []int) (total int) {
	for _, n := range ns {
		total +=
			n *
				3
	}
	return total
}
`

// TestWaiverMultilineSpan pins the EndLine matching: a finding whose
// flagged expression covers lines N..M is waivable from N-1 through M, not
// just at N, so gofmt-wrapped expressions keep the end-of-expression
// directive idiom working.
func TestWaiverMultilineSpan(t *testing.T) {
	pkg := checkOne(t, multilineSrc)

	spans := &Analyzer{
		Name: "spans",
		Doc:  "flags every += statement with its full expression range",
		Run: func(pass *Pass) error {
			for _, file := range pass.Files {
				ast.Inspect(file, func(n ast.Node) bool {
					if as, ok := n.(*ast.AssignStmt); ok && as.Tok == token.ADD_ASSIGN {
						pass.ReportRangef(as.Pos(), as.End(), "multiline accumulation")
					}
					return true
				})
			}
			return nil
		},
	}

	findings, err := Run([]*Package{pkg}, []*Analyzer{spans})
	if err != nil {
		t.Fatal(err)
	}
	var live, waived int
	for _, f := range findings {
		if f.Analyzer == "waiver" {
			t.Errorf("unexpected waiver finding (directive should have matched): %s", f.Message)
			continue
		}
		if f.EndLine <= f.Pos.Line {
			t.Errorf("finding %q lost its range: EndLine %d <= Pos.Line %d", f.Message, f.EndLine, f.Pos.Line)
		}
		if f.Waived {
			waived++
		} else {
			live++
		}
	}
	if waived != 1 || live != 1 {
		t.Errorf("got %d waived / %d live findings, want 1 / 1", waived, live)
	}
}
