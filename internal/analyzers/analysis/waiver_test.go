package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// waiverSrc exercises every waiver shape against a dummy analyzer that
// flags each function declaration.
const waiverSrc = `package w

func a() int { return 1 } //batlint:ignore dummy covered by a same-line waiver

//batlint:ignore dummy covered by a line-above waiver
func b() int { return 2 }

func c() int { return 3 } //batlint:ignore othercheck names a different analyzer

func d() int { return 4 } //batlint:ignore

//batlint:ignore dummy stale: nothing on this or the next line is flagged

//batlint:ignore disabledcheck not stale: its analyzer did not run
`

func TestWaivers(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "w.go", waiverSrc, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	conf := types.Config{}
	tpkg, err := conf.Check("w", fset, []*ast.File{f}, &types.Info{})
	if err != nil {
		t.Fatal(err)
	}
	pkg := &Package{Path: "w", Fset: fset, Files: []*ast.File{f}, Types: tpkg, Info: &types.Info{}}

	dummy := &Analyzer{
		Name: "dummy",
		Doc:  "flags every function declaration",
		Run: func(pass *Pass) error {
			for _, file := range pass.Files {
				for _, d := range file.Decls {
					if fd, ok := d.(*ast.FuncDecl); ok {
						pass.Reportf(fd.Pos(), "flagged %s", fd.Name.Name)
					}
				}
			}
			return nil
		},
	}

	findings, err := Run([]*Package{pkg}, []*Analyzer{dummy})
	if err != nil {
		t.Fatal(err)
	}

	var got []string
	for _, fd := range findings {
		got = append(got, fd.Analyzer+": "+fd.Message)
	}
	want := []string{
		// a and b are suppressed by valid waivers; c's waiver names the
		// wrong analyzer and d's has no analyzer at all, so both survive.
		"dummy: flagged c",
		"dummy: flagged d",
		// d's bare directive is malformed.
		"waiver: //batlint:ignore needs an analyzer name and a justification",
		// The dummy waiver with no matching finding is stale; the
		// disabledcheck one is ignored because that analyzer never ran.
		"waiver: stale //batlint:ignore: no dummy finding",
	}
	if len(got) != len(want) {
		t.Fatalf("got %d findings, want %d:\n%s", len(got), len(want), strings.Join(got, "\n"))
	}
	for i, w := range want {
		if !strings.HasPrefix(got[i], w) {
			t.Errorf("finding %d = %q, want prefix %q", i, got[i], w)
		}
	}
}
