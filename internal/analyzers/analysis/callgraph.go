package analysis

import (
	"encoding/json"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file drives summary.go whole-program: it indexes every function
// with source in the loaded packages, builds the static call graph,
// condenses it with Tarjan's algorithm, and computes summaries bottom-up
// (callees before callers), iterating each SCC — and, because struct-field
// taint feeds back outside the call ordering, the whole schedule — to a
// fixpoint. The computation is stratified so union-only merging stays
// monotone: phase 1 grows ValidatedParams and Blocking (sanitizers and
// blocking only accumulate); phase 2, with sanitizers frozen, grows
// TaintedResults / SinkParams / Flows and the tainted-field set. A final
// recording walk emits the surviving source→sink TaintEvents analyzers
// report.

// progFunc is one function with source available for summarization.
type progFunc struct {
	pkg  *Package
	decl *ast.FuncDecl
	fn   *types.Func
	key  string
}

// Program is the interprocedural view over one batch of packages: every
// summarizable function, the call graph among them, the summaries at
// fixpoint (own plus any imported facts), global field-taint state, and
// the recorded taint events per package.
type Program struct {
	funcs         map[string]*progFunc
	summaries     map[string]*Summary
	taintedFields map[string]bool
	checkedFields map[string]bool
	events        map[string][]TaintEvent // package path -> events
}

// Facts is the serialized cross-package state batlint's go vet mode
// writes to (and reads from) .vetx files, so summaries survive the
// unitchecker protocol's one-unit-at-a-time package loading. Imported
// facts are re-exported, so a unit's .vetx carries its transitive view.
type Facts struct {
	Funcs         map[string]Summary `json:"funcs,omitempty"`
	TaintedFields []string           `json:"tainted_fields,omitempty"`
	CheckedFields []string           `json:"checked_fields,omitempty"`
}

// BuildProgram indexes pkgs, seeds state from imported facts (nil is
// fine), and runs the SCC fixpoint plus the recording pass.
func BuildProgram(pkgs []*Package, imported *Facts) *Program {
	p := &Program{
		funcs:         map[string]*progFunc{},
		summaries:     map[string]*Summary{},
		taintedFields: map[string]bool{},
		checkedFields: map[string]bool{},
		events:        map[string][]TaintEvent{},
	}
	if imported != nil {
		for k, s := range imported.Funcs {
			cp := s
			p.summaries[k] = &cp
		}
		for _, f := range imported.TaintedFields {
			p.taintedFields[f] = true
		}
		for _, f := range imported.CheckedFields {
			p.checkedFields[f] = true
		}
	}
	var order []string
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				key := funcKey(fn)
				p.funcs[key] = &progFunc{pkg: pkg, decl: fd, fn: fn, key: key}
				order = append(order, key)
			}
		}
	}
	sort.Strings(order)

	p.collectCheckedFields(pkgs)
	sccs := p.sccOrder(order)

	// Phase 1: validators and blocking (monotone on their own).
	p.fixpoint(sccs, func(s *Summary, next Summary) bool { return s.mergeValidators(next) })
	// Phase 2: taint, sinks, and flows, with sanitizers frozen.
	p.fixpoint(sccs, func(s *Summary, next Summary) bool { return s.mergeTaint(next) })

	// Recording pass: emit the surviving source->sink events.
	for _, key := range order {
		p.walkFunc(p.funcs[key], true)
	}
	for path := range p.events {
		evs := p.events[path]
		sort.Slice(evs, func(i, j int) bool { return evs[i].Pos < evs[j].Pos })
	}
	return p
}

// fixpoint runs the summarizer bottom-up over the SCC schedule until no
// summary and no global field state changes. merge is the phase's
// union-only merge step.
func (p *Program) fixpoint(sccs [][]string, merge func(*Summary, Summary) bool) {
	for {
		changed := false
		for _, scc := range sccs {
			for {
				sccChanged := false
				for _, key := range scc {
					next, fieldsChanged := p.walkFunc(p.funcs[key], false)
					if fieldsChanged {
						sccChanged = true
					}
					s := p.summaries[key]
					if s == nil {
						s = &Summary{}
						p.summaries[key] = s
					}
					if merge(s, next) {
						sccChanged = true
					}
				}
				if !sccChanged {
					break
				}
				changed = true
			}
		}
		if !changed {
			return
		}
	}
}

// collectCheckedFields finds every struct field relationally compared
// inside a Decode*-named function: the format layer's validation point.
// Fields bounded there are trusted for narrowing program-wide — the one
// name-based trust rule carried over from the original local analyzer.
func (p *Program) collectCheckedFields(pkgs []*Package) {
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil || !strings.HasPrefix(fd.Name.Name, "Decode") {
					continue
				}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					b, ok := n.(*ast.BinaryExpr)
					if !ok {
						return true
					}
					switch b.Op {
					case token.LSS, token.GTR, token.LEQ, token.GEQ:
						for _, operand := range [2]ast.Expr{b.X, b.Y} {
							sel, ok := ast.Unparen(operand).(*ast.SelectorExpr)
							if !ok {
								continue
							}
							s, ok := pkg.Info.Selections[sel]
							if !ok || s.Kind() != types.FieldVal {
								continue
							}
							if key := fieldKeyOf(s.Recv(), sel.Sel.Name); key != "" {
								p.checkedFields[key] = true
							}
						}
					}
					return true
				})
			}
		}
	}
}

// sccOrder builds the call graph restricted to in-program functions and
// returns its strongly connected components in bottom-up (callees first)
// order via Tarjan's algorithm.
func (p *Program) sccOrder(order []string) [][]string {
	edges := map[string][]string{}
	for _, key := range order {
		pf := p.funcs[key]
		seen := map[string]bool{}
		ast.Inspect(pf.decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := staticCallee(pf.pkg.Info, call)
			if callee == nil {
				return true
			}
			ck := funcKey(callee)
			if _, inProg := p.funcs[ck]; inProg && !seen[ck] {
				seen[ck] = true
				edges[key] = append(edges[key], ck)
			}
			return true
		})
		sort.Strings(edges[key])
	}

	// Iterative Tarjan. Components come out callees-first, which is the
	// bottom-up order the fixpoint wants.
	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	var sccs [][]string
	next := 0

	type frame struct {
		v  string
		ei int
	}
	for _, root := range order {
		if _, visited := index[root]; visited {
			continue
		}
		work := []frame{{v: root}}
		for len(work) > 0 {
			f := &work[len(work)-1]
			v := f.v
			if f.ei == 0 {
				index[v] = next
				low[v] = next
				next++
				stack = append(stack, v)
				onStack[v] = true
			}
			advanced := false
			for f.ei < len(edges[v]) {
				to := edges[v][f.ei]
				f.ei++
				if _, visited := index[to]; !visited {
					work = append(work, frame{v: to})
					advanced = true
					break
				}
				if onStack[to] && index[to] < low[v] {
					low[v] = index[to]
				}
			}
			if advanced {
				continue
			}
			if low[v] == index[v] {
				var scc []string
				for {
					top := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[top] = false
					scc = append(scc, top)
					if top == v {
						break
					}
				}
				sort.Strings(scc)
				sccs = append(sccs, scc)
			}
			work = work[:len(work)-1]
			if len(work) > 0 {
				parent := work[len(work)-1].v
				if low[v] < low[parent] {
					low[parent] = low[v]
				}
			}
		}
	}
	return sccs
}

func (p *Program) summaryByKey(key string) (Summary, bool) {
	if s, ok := p.summaries[key]; ok {
		return *s, true
	}
	return Summary{}, false
}

// SummaryOf returns the fixpoint summary for fn, resolving identity by
// key so export-data and source objects agree.
func (p *Program) SummaryOf(fn *types.Func) (Summary, bool) {
	return p.summaryByKey(funcKey(fn))
}

// Events returns the recorded source→sink taint events for one package
// path, in position order.
func (p *Program) Events(pkgPath string) []TaintEvent {
	return p.events[pkgPath]
}

func (p *Program) addEvent(pkgPath string, ev TaintEvent) {
	p.events[pkgPath] = append(p.events[pkgPath], ev)
}

// ExportFacts serializes the program's cross-package state (own and
// imported, so downstream units see the transitive view) for a .vetx
// file. Zero-valued summaries are elided.
func (p *Program) ExportFacts() *Facts {
	f := &Facts{Funcs: map[string]Summary{}}
	for k, s := range p.summaries {
		if s.TaintedResults == 0 && s.SinkParams == 0 && s.ValidatedParams == 0 &&
			len(s.Flows) == 0 && !s.Blocking {
			continue
		}
		f.Funcs[k] = *s
	}
	for k := range p.taintedFields {
		f.TaintedFields = append(f.TaintedFields, k)
	}
	for k := range p.checkedFields {
		f.CheckedFields = append(f.CheckedFields, k)
	}
	sort.Strings(f.TaintedFields)
	sort.Strings(f.CheckedFields)
	return f
}

// EncodeFacts renders facts as deterministic JSON for a .vetx file.
func EncodeFacts(f *Facts) ([]byte, error) {
	return json.Marshal(f)
}

// DecodeFacts parses a .vetx payload; empty or non-JSON payloads (other
// vet tools' fact formats, the pre-facts empty files) decode to nil
// rather than erroring, so mixed-tool caches stay harmless.
func DecodeFacts(data []byte) *Facts {
	if len(data) == 0 {
		return nil
	}
	var f Facts
	if err := json.Unmarshal(data, &f); err != nil {
		return nil
	}
	return &f
}

// MergeFacts folds src into dst (creating dst if nil), used to accumulate
// the per-dependency .vetx files of one go vet unit.
func MergeFacts(dst, src *Facts) *Facts {
	if src == nil {
		return dst
	}
	if dst == nil {
		dst = &Facts{Funcs: map[string]Summary{}}
	}
	if dst.Funcs == nil {
		dst.Funcs = map[string]Summary{}
	}
	for k, s := range src.Funcs {
		dst.Funcs[k] = s
	}
	dst.TaintedFields = append(dst.TaintedFields, src.TaintedFields...)
	dst.CheckedFields = append(dst.CheckedFields, src.CheckedFields...)
	return dst
}

// NarrowingFromUint64 reports whether call converts a non-constant uint64
// expression to an integer type that cannot represent every uint64,
// returning the destination and source type names. Shared by the flow
// engine (sink detection) and the uintcast analyzer's documentation of
// what it flags.
func NarrowingFromUint64(info *types.Info, call *ast.CallExpr) (to, from string, ok bool) {
	tv, isConv := info.Types[call.Fun]
	if !isConv || !tv.IsType() {
		return "", "", false
	}
	dst, ok := tv.Type.Underlying().(*types.Basic)
	if !ok || dst.Info()&types.IsInteger == 0 {
		return "", "", false
	}
	switch dst.Kind() {
	case types.Uint64, types.Uintptr:
		return "", "", false // lossless (uintptr narrowing is the mmap layer's concern)
	}
	av := info.Types[call.Args[0]]
	if av.Value != nil {
		return "", "", false // constants are checked by the compiler
	}
	src, ok := av.Type.Underlying().(*types.Basic)
	if !ok || src.Kind() != types.Uint64 {
		return "", "", false
	}
	return dst.String(), src.String(), true
}
