package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	Dir        string
	ImportPath string
	Name       string
	GoFiles    []string
	CgoFiles   []string
	Export     string
	Standard   bool
	Match      []string
	Error      *struct{ Err string }
}

// Load lists patterns with the go command (from dir, "" = cwd), then parses
// and type-checks every matched package from source, resolving imports
// through the compiler export data `go list -export` produces. Only
// non-test files are loaded, matching `go vet`'s default unit of analysis.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=Dir,ImportPath,Name,GoFiles,CgoFiles,Export,Standard,Match,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %w\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	exports := map[string]string{}
	var targets []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("loading %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if len(p.Match) > 0 && len(p.GoFiles) > 0 {
			targets = append(targets, p)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		e, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(e)
	}
	var pkgs []*Package
	for _, t := range targets {
		if len(t.CgoFiles) > 0 {
			return nil, fmt.Errorf("loading %s: cgo packages are not supported", t.ImportPath)
		}
		names := make([]string, len(t.GoFiles))
		for i, g := range t.GoFiles {
			names[i] = filepath.Join(t.Dir, g)
		}
		pkg, err := TypeCheck(fset, t.ImportPath, names, lookup)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// TypeCheck parses filenames and type-checks them as package path,
// resolving every import through lookup (which must return compiler export
// data for the import path). It is the shared core of Load, the
// analysistest fixture loader, and batlint's `go vet -vettool` mode.
func TypeCheck(fset *token.FileSet, path string, filenames []string,
	lookup func(path string) (io.ReadCloser, error)) (*Package, error) {

	var files []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %w", name, err)
		}
		files = append(files, f)
	}
	return typeCheckFiles(fset, path, files, importer.ForCompiler(fset, "gc", lookup))
}

// typeCheckFiles type-checks already-parsed files with the given importer.
func typeCheckFiles(fset *token.FileSet, path string, files []*ast.File,
	imp types.Importer) (*Package, error) {

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	var typeErrs []error
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(path, fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("type-checking %s: %v", path, typeErrs[0])
	}
	return &Package{Path: path, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}

// Run executes every analyzer over every package (after computing the
// interprocedural summaries the analyzers consult via Pass.Prog), applies
// the //batlint:ignore waiver filter, and returns all findings — waived
// ones marked, not dropped — sorted by position. Equivalent to
// RunProgram(BuildProgram(pkgs, nil), ...).
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	return RunProgram(BuildProgram(pkgs, nil), pkgs, analyzers)
}

// RunProgram is Run with a caller-supplied Program, for callers (batlint's
// go vet mode) that seed the interprocedural state from imported facts.
func RunProgram(prog *Program, pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	ran := map[string]bool{}
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	var findings []Finding
	for _, pkg := range pkgs {
		var diags []Finding
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				Prog:      prog,
			}
			name := a.Name
			pass.Report = func(d Diagnostic) {
				f := Finding{
					Analyzer: name,
					Pos:      pkg.Fset.Position(d.Pos),
					Message:  d.Message,
				}
				f.EndLine = f.Pos.Line
				if d.End.IsValid() {
					if end := pkg.Fset.Position(d.End); end.Line > f.EndLine {
						f.EndLine = end.Line
					}
				}
				diags = append(diags, f)
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %w", a.Name, pkg.Path, err)
			}
		}
		findings = append(findings, applyWaivers(pkg, diags, ran)...)
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}
