package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"libbat/internal/analyzers/analysis"
)

// SpanPair checks that every obs span opened in a function is closed on
// every path out of it: either a `defer sp.End()` right after the start,
// or an explicit sp.End() before each return (and before falling off the
// end). An unclosed span never reaches the collector — the phase simply
// vanishes from the trace, which is exactly the failure mode that makes
// per-rank timelines misleading during an incident.
//
// The walker is a structural abstract interpretation of the function body:
// branches fork the open/closed state and merge conservatively (open if
// open on any incoming arm), loops are analyzed as zero-or-more iterations.
// A span that escapes the function (returned, passed along, stored) is the
// callee's responsibility and is skipped.
var SpanPair = &analysis.Analyzer{
	Name: "spanpair",
	Doc: "every obs span started in a function must be ended on all paths " +
		"(defer sp.End() or an explicit End before each return)",
	Run: runSpanPair,
}

func runSpanPair(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		// Each function body — declarations and literals alike — is its
		// own analysis scope; spanStarts skips nested literals so a start
		// is checked exactly once, against its innermost function.
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch n := n.(type) {
			case *ast.FuncDecl:
				body = n.Body
			case *ast.FuncLit:
				body = n.Body
			}
			if body != nil {
				for _, st := range spanStarts(pass, body) {
					checkSpan(pass, body, st)
				}
			}
			return true
		})
	}
	return nil
}

// spanStart is one `sp := col.Start(...)` site inside a function body.
type spanStart struct {
	assign *ast.AssignStmt
	obj    types.Object // the span variable; nil when assigned to _
	call   *ast.CallExpr
}

// spanStarts finds the obs span starts directly inside body (not in nested
// function literals).
func spanStarts(pass *analysis.Pass, body *ast.BlockStmt) []spanStart {
	var out []spanStart
	inspectShallow(body, func(n ast.Node) {
		asg, ok := n.(*ast.AssignStmt)
		if !ok || len(asg.Rhs) != 1 || len(asg.Lhs) != 1 {
			return
		}
		call, ok := asg.Rhs[0].(*ast.CallExpr)
		if !ok || !isObsStart(pass.TypesInfo, call) {
			return
		}
		lhs, ok := asg.Lhs[0].(*ast.Ident)
		if !ok {
			return
		}
		if lhs.Name == "_" {
			pass.Reportf(asg.Pos(), "obs span started and immediately discarded: it can never be ended, so it never reaches the trace")
			return
		}
		obj := pass.TypesInfo.Defs[lhs]
		if obj == nil {
			obj = pass.TypesInfo.Uses[lhs]
		}
		if obj != nil {
			out = append(out, spanStart{assign: asg, obj: obj, call: call})
		}
	})
	return out
}

// isObsStart reports whether call invokes an obs-package function named
// Start (the span constructor).
func isObsStart(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	return fn != nil && fn.Name() == "Start" && inScope(pkgPathOf(fn), "obs")
}

// checkSpan verifies one span start against its enclosing function body.
func checkSpan(pass *analysis.Pass, body *ast.BlockStmt, st spanStart) {
	if escapes(pass, body, st) {
		return
	}
	c := &spanChecker{pass: pass, st: st, reported: map[token.Pos]bool{}}
	end := c.walkStmts(body.List, spanState{})
	if end.open && !end.deferred {
		pass.Reportf(st.assign.Pos(),
			"obs span %q is not ended before the function returns: add defer %s.End() or End it on every path",
			spanName(st.call), st.obj.Name())
	}
}

// escapes reports whether the span variable is used for anything other
// than starting and ending the span — returned, reassigned elsewhere,
// passed as an argument, captured by a non-defer closure. Such spans are
// owned by someone else and not checked here.
func escapes(pass *analysis.Pass, body *ast.BlockStmt, st spanStart) bool {
	allowed := map[*ast.Ident]bool{}
	if id, ok := st.assign.Lhs[0].(*ast.Ident); ok {
		allowed[id] = true
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "End" {
				if id, ok := sel.X.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == st.obj {
					allowed[id] = true
				}
			}
		}
		return true
	})
	escaped := false
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || allowed[id] {
			return true
		}
		if pass.TypesInfo.Uses[id] == st.obj || pass.TypesInfo.Defs[id] == st.obj {
			escaped = true
		}
		return true
	})
	return escaped
}

// spanState is the abstract state threaded through the walker.
type spanState struct {
	open     bool // span started and not yet ended on this path
	deferred bool // a defer guarantees End runs on every exit
}

type spanChecker struct {
	pass     *analysis.Pass
	st       spanStart
	reported map[token.Pos]bool
}

func (c *spanChecker) walkStmts(stmts []ast.Stmt, st spanState) spanState {
	for _, s := range stmts {
		st = c.walkStmt(s, st)
	}
	return st
}

func (c *spanChecker) walkStmt(s ast.Stmt, st spanState) spanState {
	switch s := s.(type) {
	case *ast.AssignStmt:
		if s == c.st.assign {
			st.open = true
		}
	case *ast.ExprStmt:
		if c.isEndCall(s.X) {
			st.open = false
		}
	case *ast.DeferStmt:
		if c.isEndCall(s.Call) || c.deferClosureEnds(s) {
			st.deferred = true
		}
	case *ast.ReturnStmt:
		if st.open && !st.deferred && !c.reported[s.Pos()] {
			c.reported[s.Pos()] = true
			c.pass.Reportf(s.Pos(),
				"return leaves obs span %q (started at line %d) unended on this path: End it before returning or defer the End",
				spanName(c.st.call), c.pass.Fset.Position(c.st.assign.Pos()).Line)
		}
	case *ast.BlockStmt:
		st = c.walkStmts(s.List, st)
	case *ast.LabeledStmt:
		st = c.walkStmt(s.Stmt, st)
	case *ast.IfStmt:
		if s.Init != nil {
			st = c.walkStmt(s.Init, st)
		}
		then := c.walkStmts(s.Body.List, st)
		els := st
		if s.Else != nil {
			els = c.walkStmt(s.Else, st)
		}
		st = mergeStates(then, els)
	case *ast.ForStmt:
		if s.Init != nil {
			st = c.walkStmt(s.Init, st)
		}
		// Zero-or-more iterations: the loop body cannot be relied on to
		// close the span, but returns inside it are still checked.
		out := c.walkStmts(s.Body.List, st)
		st = mergeStates(st, out)
	case *ast.RangeStmt:
		out := c.walkStmts(s.Body.List, st)
		st = mergeStates(st, out)
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		st = c.walkClauses(s, st)
	}
	return st
}

// walkClauses handles switch/type-switch/select: each clause forks from
// the incoming state; a missing default keeps the fall-through arm.
func (c *spanChecker) walkClauses(s ast.Stmt, st spanState) spanState {
	var body *ast.BlockStmt
	hasDefault := false
	switch s := s.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			st = c.walkStmt(s.Init, st)
		}
		body = s.Body
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			st = c.walkStmt(s.Init, st)
		}
		body = s.Body
	case *ast.SelectStmt:
		body = s.Body
	}
	merged := spanState{deferred: true} // identity for merge
	any := false
	for _, cl := range body.List {
		var stmts []ast.Stmt
		switch cl := cl.(type) {
		case *ast.CaseClause:
			stmts = cl.Body
			if cl.List == nil {
				hasDefault = true
			}
		case *ast.CommClause:
			stmts = cl.Body
			if cl.Comm == nil {
				hasDefault = true
			}
		}
		out := c.walkStmts(stmts, st)
		if !any {
			merged, any = out, true
		} else {
			merged = mergeStates(merged, out)
		}
	}
	if !any {
		return st
	}
	if !hasDefault {
		merged = mergeStates(merged, st)
	}
	return merged
}

// mergeStates joins two control-flow arms conservatively: the span is open
// if either arm leaves it open; the defer only counts if both arms
// registered it.
func mergeStates(a, b spanState) spanState {
	return spanState{open: a.open || b.open, deferred: a.deferred && b.deferred}
}

// isEndCall matches `<spanvar>.End()` for the tracked span variable.
func (c *spanChecker) isEndCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "End" {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && c.pass.TypesInfo.Uses[id] == c.st.obj
}

// deferClosureEnds matches `defer func() { ... sp.End() ... }()`.
func (c *spanChecker) deferClosureEnds(d *ast.DeferStmt) bool {
	lit, ok := d.Call.Fun.(*ast.FuncLit)
	if !ok {
		return false
	}
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if e, ok := n.(ast.Expr); ok && c.isEndCall(e) {
			found = true
		}
		return true
	})
	return found
}

// spanName extracts the span's name literal for messages ("span" when the
// name is not a literal).
func spanName(call *ast.CallExpr) string {
	for _, a := range call.Args {
		if lit, ok := a.(*ast.BasicLit); ok && lit.Kind == token.STRING {
			return strings.Trim(lit.Value, `"`)
		}
	}
	return "span"
}

// inspectShallow visits nodes in n but does not descend into nested
// function literals (their bodies are separate analysis scopes).
func inspectShallow(n ast.Node, fn func(ast.Node)) {
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		if m != nil {
			fn(m)
		}
		return true
	})
}
