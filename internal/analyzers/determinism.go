package analyzers

import (
	"go/ast"
	"go/types"
	"strconv"

	"libbat/internal/analyzers/analysis"
)

// determinismPkgs is the byte-identity domain: the BAT build pipeline and
// the radix sort underneath it, whose output TestBuildDeterminism requires
// to be identical for any worker count.
var determinismPkgs = []string{"bat", "radix"}

// Determinism protects that property at the source level: inside the build
// pipeline it forbids wall-clock reads (time.Now, time.Since), the
// math/rand import (seeded or not, its stream depends on call interleaving
// across workers), and map iteration — Go randomizes map order, so any map
// range feeding an output buffer produces run-dependent bytes. The one
// tolerated map-range shape is the canonical sorted-keys idiom: a loop
// whose body only collects keys into a slice that a sort.*/slices.* call
// subsequently orders.
var Determinism = &analysis.Analyzer{
	Name: "determinism",
	Doc: "the BAT build pipeline and radix sort must be bit-deterministic: no time.Now/time.Since, " +
		"no math/rand, no map-order iteration (collect-then-sort is allowed)",
	Run: runDeterminism,
}

func runDeterminism(pass *analysis.Pass) error {
	if !inScope(pass.Pkg.Path(), determinismPkgs...) {
		return nil
	}
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "math/rand" || path == "math/rand/v2" {
				pass.Reportf(imp.Pos(),
					"import of %s in the deterministic build pipeline: its stream depends on call interleaving across workers", path)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				fn := calleeFunc(pass.TypesInfo, n)
				if fn != nil && pkgPathOf(fn) == "time" && (fn.Name() == "Now" || fn.Name() == "Since") {
					pass.Reportf(n.Pos(),
						"time.%s in the deterministic build pipeline: route timing through the obs collector outside bat/radix", fn.Name())
				}
			case *ast.RangeStmt:
				checkMapRange(pass, f, n)
			}
			return true
		})
	}
	return nil
}

// checkMapRange reports a range over a map unless it is the collect-keys-
// then-sort idiom.
func checkMapRange(pass *analysis.Pass, file *ast.File, rs *ast.RangeStmt) {
	tv, ok := pass.TypesInfo.Types[rs.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	if slice, ok := keyCollectionTarget(rs); ok && sortedLater(pass, file, rs, slice) {
		return
	}
	pass.Reportf(rs.Pos(),
		"map iteration in the deterministic build pipeline: Go randomizes map order, so bytes derived "+
			"from it differ run to run; iterate sorted keys instead (collect into a slice, sort, range the slice)")
}

// keyCollectionTarget matches a body of exactly `s = append(s, k)` where k
// is the range key, returning s's name.
func keyCollectionTarget(rs *ast.RangeStmt) (string, bool) {
	key, ok := rs.Key.(*ast.Ident)
	if !ok || rs.Value != nil || len(rs.Body.List) != 1 {
		return "", false
	}
	asg, ok := rs.Body.List[0].(*ast.AssignStmt)
	if !ok || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 {
		return "", false
	}
	lhs, ok := asg.Lhs[0].(*ast.Ident)
	if !ok {
		return "", false
	}
	call, ok := asg.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return "", false
	}
	if fun, ok := call.Fun.(*ast.Ident); !ok || fun.Name != "append" {
		return "", false
	}
	arg0, ok0 := call.Args[0].(*ast.Ident)
	arg1, ok1 := call.Args[1].(*ast.Ident)
	if !ok0 || !ok1 || arg0.Name != lhs.Name || arg1.Name != key.Name {
		return "", false
	}
	return lhs.Name, true
}

// sortedLater reports whether a sort.* or slices.* call mentioning slice
// appears after the range statement in the same file (the enclosing
// function necessarily contains it).
func sortedLater(pass *analysis.Pass, file *ast.File, rs *ast.RangeStmt, slice string) bool {
	found := false
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() || found {
			return true
		}
		fn := calleeFunc(pass.TypesInfo, call)
		if fn == nil {
			return true
		}
		if p := pkgPathOf(fn); p != "sort" && p != "slices" {
			return true
		}
		for _, a := range call.Args {
			if id, ok := ast.Unparen(a).(*ast.Ident); ok && id.Name == slice {
				found = true
			}
		}
		return true
	})
	return found
}
