// Package analysistest runs an analyzer over golden fixture packages under
// a testdata/src tree and checks its diagnostics against `// want`
// expectations, mirroring golang.org/x/tools/go/analysis/analysistest:
//
//	off := int(binary.LittleEndian.Uint64(buf)) // want `unchecked conversion`
//
// Each want comment holds one or more quoted or backquoted regexps; every
// diagnostic on that line must match one expectation and every expectation
// must be matched. Fixture packages may import each other by relative path
// under testdata/src (GOPATH-style); all other imports resolve to the real
// standard library via compiler export data. Diagnostics pass through the
// same //batlint:ignore waiver filter as cmd/batlint, so fixtures exercise
// waivers too.
package analysistest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"libbat/internal/analyzers/analysis"
)

// Run loads each fixture package (a path relative to srcRoot, typically
// "testdata/src"), runs a over it, and reports mismatches against the
// fixtures' want comments through t.
func Run(t *testing.T, srcRoot string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	pkgs, err := loadFixtures(srcRoot, pkgPaths)
	if err != nil {
		t.Fatalf("loading fixtures: %v", err)
	}
	findings, err := analysis.Run(pkgs, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
	checkWants(t, pkgs, findings)
}

// want is one expectation: a regexp that must match a diagnostic message
// on its line.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// wantRE extracts the quoted/backquoted patterns of a want comment.
var wantRE = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// checkWants matches findings against // want comments, failing the test
// for unexpected or missing diagnostics.
func checkWants(t *testing.T, pkgs []*analysis.Package, findings []analysis.Finding) {
	t.Helper()
	var wants []*want
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
					if !strings.HasPrefix(text, "want ") {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					for _, tok := range wantRE.FindAllString(strings.TrimPrefix(text, "want "), -1) {
						pat := tok
						if pat[0] == '"' {
							var err error
							if pat, err = strconv.Unquote(tok); err != nil {
								t.Errorf("%s: bad want pattern %s: %v", pos, tok, err)
								continue
							}
						} else {
							pat = strings.Trim(pat, "`")
						}
						re, err := regexp.Compile(pat)
						if err != nil {
							t.Errorf("%s: bad want regexp %s: %v", pos, tok, err)
							continue
						}
						wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re, raw: pat})
					}
				}
			}
		}
	}
	for _, f := range findings {
		if f.Waived {
			continue // suppressed by //batlint:ignore, like cmd/batlint's gate
		}
		matched := false
		for _, w := range wants {
			if !w.matched && w.file == f.Pos.Filename && w.line == f.Pos.Line && w.re.MatchString(f.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", f)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.raw)
		}
	}
}

// loadFixtures parses and type-checks the fixture packages plus their
// fixture-local imports, resolving everything else to the standard
// library's export data.
func loadFixtures(srcRoot string, pkgPaths []string) ([]*analysis.Package, error) {
	root, err := filepath.Abs(srcRoot)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	ld := &fixtureLoader{
		root:   root,
		fset:   fset,
		parsed: map[string][]*ast.File{},
		types:  map[string]*types.Package{},
	}
	// Parse the requested packages and every reachable fixture-local
	// import, collecting the external (stdlib) imports on the way.
	std := map[string]bool{}
	queue := append([]string(nil), pkgPaths...)
	seen := map[string]bool{}
	for len(queue) > 0 {
		p := queue[0]
		queue = queue[1:]
		if seen[p] {
			continue
		}
		seen[p] = true
		files, err := ld.parse(p)
		if err != nil {
			return nil, err
		}
		for _, f := range files {
			for _, imp := range f.Imports {
				path, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					continue
				}
				if ld.isLocal(path) {
					queue = append(queue, path)
				} else {
					std[path] = true
				}
			}
		}
	}
	if err := ld.loadStdExports(std); err != nil {
		return nil, err
	}
	var pkgs []*analysis.Package
	for _, p := range pkgPaths {
		pkg, err := ld.check(p)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// fixtureLoader type-checks fixture packages recursively.
type fixtureLoader struct {
	root    string
	fset    *token.FileSet
	parsed  map[string][]*ast.File
	types   map[string]*types.Package
	exports map[string]string // stdlib import path -> export data file
	imp     types.Importer    // gc importer over exports
	pkgs    map[string]*analysis.Package
}

func (l *fixtureLoader) isLocal(path string) bool {
	st, err := os.Stat(filepath.Join(l.root, filepath.FromSlash(path)))
	return err == nil && st.IsDir()
}

func (l *fixtureLoader) parse(path string) ([]*ast.File, error) {
	if fs, ok := l.parsed[path]; ok {
		return fs, nil
	}
	dir := filepath.Join(l.root, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("fixture package %s: %w", path, err)
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("fixture package %s: no Go files in %s", path, dir)
	}
	l.parsed[path] = files
	return files, nil
}

// loadStdExports resolves the external imports to compiler export data in
// one `go list -export` invocation.
func (l *fixtureLoader) loadStdExports(paths map[string]bool) error {
	l.exports = map[string]string{}
	if len(paths) > 0 {
		args := []string{"list", "-e", "-export", "-deps", "-json=ImportPath,Export"}
		sorted := make([]string, 0, len(paths))
		for p := range paths {
			sorted = append(sorted, p)
		}
		sort.Strings(sorted)
		cmd := exec.Command("go", append(args, sorted...)...)
		var stderr bytes.Buffer
		cmd.Stderr = &stderr
		out, err := cmd.Output()
		if err != nil {
			return fmt.Errorf("go list -export: %w\n%s", err, stderr.String())
		}
		dec := json.NewDecoder(bytes.NewReader(out))
		for {
			var p struct{ ImportPath, Export string }
			if err := dec.Decode(&p); err == io.EOF {
				break
			} else if err != nil {
				return err
			}
			if p.Export != "" {
				l.exports[p.ImportPath] = p.Export
			}
		}
	}
	lookup := func(path string) (io.ReadCloser, error) {
		e, ok := l.exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(e)
	}
	l.imp = importer.ForCompiler(l.fset, "gc", lookup)
	l.pkgs = map[string]*analysis.Package{}
	return nil
}

// Import implements types.Importer over the fixture tree + stdlib.
func (l *fixtureLoader) Import(path string) (*types.Package, error) {
	if tp, ok := l.types[path]; ok {
		return tp, nil
	}
	if !l.isLocal(path) {
		return l.imp.Import(path)
	}
	pkg, err := l.check(path)
	if err != nil {
		return nil, err
	}
	return pkg.Types, nil
}

// check type-checks one fixture package (memoized).
func (l *fixtureLoader) check(path string) (*analysis.Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	files, err := l.parse(path)
	if err != nil {
		return nil, err
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: l}
	tp, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking fixture %s: %w", path, err)
	}
	l.types[path] = tp
	pkg := &analysis.Package{Path: path, Fset: l.fset, Files: files, Types: tp, Info: info}
	l.pkgs[path] = pkg
	return pkg, nil
}
