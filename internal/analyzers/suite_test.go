package analyzers_test

import (
	"testing"

	"libbat/internal/analyzers"
	"libbat/internal/analyzers/analysistest"
)

// Each analyzer runs over golden fixtures under testdata/src; the `// want`
// comments in the fixtures are the expected-diagnostic oracle. The positive
// fixture for uintcast reproduces the PR 2 offset-wrap panic shape; each
// suite also includes an out-of-scope or approved-idiom negative so scope
// and guard detection are pinned, and a //batlint:ignore waiver so the
// suppression path is exercised end to end.

func TestEndian(t *testing.T) {
	analysistest.Run(t, "testdata/src", analyzers.Endian, "endian/bat", "endian/other")
}

func TestUintCast(t *testing.T) {
	analysistest.Run(t, "testdata/src", analyzers.UintCast, "uintcast/bat")
}

// TestUintCastCrossPackage pins the interprocedural layer across a package
// boundary: the decoding caller lives in cross/bat, the bounding validator
// and the narrowing helper in cross/val, and findings (or their absence)
// depend on val's summaries.
func TestUintCastCrossPackage(t *testing.T) {
	analysistest.Run(t, "testdata/src", analyzers.UintCast,
		"uintcast/cross/bat", "uintcast/cross/val")
}

func TestDeterminism(t *testing.T) {
	analysistest.Run(t, "testdata/src", analyzers.Determinism,
		"determinism/bat", "determinism/radix", "determinism/other")
}

func TestFabricErr(t *testing.T) {
	analysistest.Run(t, "testdata/src", analyzers.FabricErr, "fabricerr/core")
}

func TestSpanPair(t *testing.T) {
	analysistest.Run(t, "testdata/src", analyzers.SpanPair, "spanpair/core")
}

func TestCtxSleep(t *testing.T) {
	analysistest.Run(t, "testdata/src", analyzers.CtxSleep, "ctxsleep/bat", "ctxsleep/fabric")
}

// TestCtxFlow needs both fixture packages loaded so the interprocedural
// Blocking summaries cover the local spin() helper as well as the pfs
// leaves.
func TestCtxFlow(t *testing.T) {
	analysistest.Run(t, "testdata/src", analyzers.CtxFlow, "ctxflow/core", "ctxflow/pfs")
}
