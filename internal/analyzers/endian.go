package analyzers

import (
	"go/ast"
	"go/types"

	"libbat/internal/analyzers/analysis"
)

// formatPkgs are the on-disk format packages: every byte they serialize or
// parse is little-endian by contract (DESIGN.md §9), so readers on any
// host decode the same layout.
var formatPkgs = []string{"bat", "meta", "particles", "checksum"}

// Endian enforces that contract mechanically: inside a format package it
// forbids binary.BigEndian and binary.NativeEndian outright, requires the
// order argument of binary.Write/binary.Read to be the literal
// binary.LittleEndian selector, and flags declarations of
// binary.ByteOrder-typed variables, fields, or parameters (an indirection
// that would let call sites vary the order at runtime).
var Endian = &analysis.Analyzer{
	Name: "endian",
	Doc: "on-disk format packages (" + "bat, meta, particles, checksum" + ") must serialize " +
		"exclusively via binary.LittleEndian: no BigEndian/NativeEndian, no variable byte order",
	Run: runEndian,
}

func runEndian(pass *analysis.Pass) error {
	if !inScope(pass.Pkg.Path(), formatPkgs...) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				if name, ok := binaryPkgObj(pass.TypesInfo, n); ok {
					switch name {
					case "BigEndian", "NativeEndian":
						pass.Reportf(n.Pos(),
							"binary.%s in an on-disk format package: the layout contract is little-endian, use binary.LittleEndian", name)
					case "ByteOrder":
						pass.Reportf(n.Pos(),
							"binary.ByteOrder declaration in an on-disk format package permits a variable byte order: serialize via binary.LittleEndian directly")
					}
				}
			case *ast.CallExpr:
				name, ok := binaryCallee(pass.TypesInfo, n)
				if !ok || (name != "Write" && name != "Read") {
					return true
				}
				// A direct binary.BigEndian/NativeEndian argument is already
				// reported by the selector check above; this catches orders
				// routed through variables, parameters, or fields.
				if len(n.Args) < 2 || !isDirectOrderSel(pass.TypesInfo, n.Args[1]) {
					pass.Reportf(n.Pos(),
						"binary.%s with a byte order that is not the literal binary.LittleEndian: the on-disk layout contract forbids variable orders", name)
				}
			}
			return true
		})
	}
	return nil
}

// binaryPkgObj reports the name of the encoding/binary object sel refers
// to, if any. Both value uses (binary.BigEndian) and type uses
// (binary.ByteOrder) resolve through Uses.
func binaryPkgObj(info *types.Info, sel *ast.SelectorExpr) (string, bool) {
	obj := info.Uses[sel.Sel]
	if obj == nil || pkgPathOf(obj) != "encoding/binary" {
		return "", false
	}
	return obj.Name(), true
}

// binaryCallee reports the encoding/binary function a call invokes, if any.
func binaryCallee(info *types.Info, call *ast.CallExpr) (string, bool) {
	fn := calleeFunc(info, call)
	if fn == nil || pkgPathOf(fn) != "encoding/binary" {
		return "", false
	}
	return fn.Name(), true
}

// isDirectOrderSel reports whether e is a literal binary.<Order> selector
// (as opposed to a variable holding a ByteOrder).
func isDirectOrderSel(info *types.Info, e ast.Expr) bool {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	name, ok := binaryPkgObj(info, sel)
	return ok && (name == "LittleEndian" || name == "BigEndian" || name == "NativeEndian")
}
