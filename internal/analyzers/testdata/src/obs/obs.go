// Package obs is a fixture stub of the tracing collector: Start/End carry
// the same shape as the real obs package so the spanpair analyzer resolves
// them identically.
package obs

// Collector stands in for the per-rank trace collector.
type Collector struct{}

// Span is one open trace interval.
type Span struct{}

// Start opens a span; the caller must End it.
func (c *Collector) Start(rank int, name string) *Span { return &Span{} }

// End closes the span and delivers it to the collector.
func (s *Span) End() {}
