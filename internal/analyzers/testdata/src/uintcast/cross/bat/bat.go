// Package bat is the caller half of the cross-package uintcast fixture:
// it decodes untrusted values here and relies on package val for bounds
// and narrowing. The analyzer must see through the package boundary in
// both directions — a validator in val sanitizes, a narrowing helper in
// val makes the call site here the sink.
package bat

import (
	"encoding/binary"
	"errors"

	"uintcast/cross/val"
)

var errRange = errors.New("field out of range")

type readerAt interface {
	ReadAt(p []byte, off int64) (int, error)
}

// loadValidated routes the decoded offset through val.ValidOffset: the
// bound lives in another package, and no waiver is needed.
func loadValidated(r readerAt, buf []byte, size int64) ([]byte, error) {
	off := binary.LittleEndian.Uint64(buf)
	if !val.ValidOffset(off, size) {
		return nil, errRange
	}
	b := make([]byte, 16)
	_, err := r.ReadAt(b, int64(off))
	return b, err
}

// loadClamped narrows val.Clamp's result: Clamp bounds on every path, so
// the result is clean despite the tainted argument.
func loadClamped(buf []byte, limit uint64) int {
	return int(val.Clamp(binary.LittleEndian.Uint64(buf), limit))
}

// loadUnvalidated skips the validator: the local narrow is the sink.
func loadUnvalidated(r readerAt, buf []byte) ([]byte, error) {
	off := binary.LittleEndian.Uint64(buf)
	b := make([]byte, 16)
	_, err := r.ReadAt(b, int64(off)) // want `unchecked conversion int64\(off\) of decoded uint64`
	return b, err
}

// narrowViaHelper hands decoded input to val.Narrow, which converts its
// parameter unguarded: the finding lands here, on the tainted argument.
func narrowViaHelper(buf []byte) (int64, error) {
	return val.Narrow(binary.LittleEndian.Uint64(buf)) // want `decoded uint64 .* flows unbounded into Narrow`
}

// narrowViaHelperBounded bounds the value before the helper narrows it.
func narrowViaHelperBounded(buf []byte, size int64) (int64, error) {
	off := binary.LittleEndian.Uint64(buf)
	if off > uint64(size) {
		return 0, errRange
	}
	return val.Narrow(off)
}
