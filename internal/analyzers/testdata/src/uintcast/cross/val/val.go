// Package val is the validator half of the cross-package uintcast
// fixture: helpers whose bounding (or narrowing) behavior lives in a
// different package than the decoded values they receive. Its import path
// has no format-package element, so nothing in this file is ever a
// finding — only its summaries matter.
package val

import "errors"

var errRange = errors.New("offset out of range")

// ValidOffset bounds its first parameter: the summary records the check,
// so a caller in another package that routes a decoded value through it
// has sanitized the value.
func ValidOffset(off uint64, size int64) bool {
	return off < uint64(size)
}

// Clamp bounds off against limit on every path, so its result is clean
// even when the argument was tainted: no parameter→result flow survives
// the dominating comparison.
func Clamp(off, limit uint64) uint64 {
	if off > limit {
		return limit
	}
	return off
}

// Narrow converts its parameter unguarded: its summary marks the
// parameter a sink, making callers in format packages responsible for the
// bound.
func Narrow(off uint64) (int64, error) {
	if off == 0 {
		return 0, errRange
	}
	return int64(off), nil
}
