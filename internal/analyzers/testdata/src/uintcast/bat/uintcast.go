// Package bat is a uintcast fixture reproducing the PR 2 offset-wrap panic
// shape: a decoded uint64 treelet offset converted to int64 without a
// bounds check wraps negative and faults the subsequent ReadAt.
package bat

import (
	"encoding/binary"
	"errors"
)

var errRange = errors.New("field out of range")

type leafRef struct {
	offset  uint64
	byteLen uint64
}

type readerAt interface {
	ReadAt(p []byte, off int64) (int, error)
}

// loadUnchecked is the bug: ref.offset is attacker-controlled file bytes.
func loadUnchecked(r readerAt, ref leafRef) ([]byte, error) {
	buf := make([]byte, 16)
	_, err := r.ReadAt(buf, int64(ref.offset)) // want `unchecked conversion int64\(ref\.offset\) of untrusted uint64`
	return buf, err
}

// loadGuarded is the fix the fuzzer finding led to: compare against the
// file size before converting.
func loadGuarded(r readerAt, ref leafRef, size int64) ([]byte, error) {
	if ref.offset > uint64(size) {
		return nil, errRange
	}
	buf := make([]byte, 16)
	_, err := r.ReadAt(buf, int64(ref.offset))
	return buf, err
}

// loadWaived documents a bound established elsewhere.
func loadWaived(r readerAt, ref leafRef) ([]byte, error) {
	buf := make([]byte, 16)
	//batlint:ignore uintcast offset validated against file size at Decode time
	_, err := r.ReadAt(buf, int64(ref.offset))
	return buf, err
}

// decodeCount narrows a decoded length with no bound: a crafted header can
// make the count negative after conversion.
func decodeCount(buf []byte) int {
	return int(binary.LittleEndian.Uint64(buf)) // want `unchecked conversion int\(binary\.LittleEndian\.Uint64\(buf\)\) of untrusted uint64`
}

// decodeCountGuarded bounds the uint64 before narrowing.
func decodeCountGuarded(buf []byte) (int, error) {
	cnt := binary.LittleEndian.Uint64(buf[:8])
	if cnt > uint64(len(buf))/12 {
		return 0, errRange
	}
	return int(cnt), nil
}

// headerLen converts a constant: the compiler checks that, not batlint.
func headerLen() int {
	const fixed uint64 = 48
	return int(fixed)
}

// widen goes the lossless direction and is never a finding.
func widen(n uint32) uint64 {
	return uint64(n)
}
