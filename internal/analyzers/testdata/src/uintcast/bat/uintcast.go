// Package bat is a uintcast fixture reproducing the PR 2 offset-wrap panic
// shape: a uint64 decoded from file bytes converted to int64 without a
// bounds check wraps negative and faults the subsequent ReadAt. The
// analyzer is taint-based — only values that originate in decoded input
// are suspicious — so the fixture first establishes real taint (decodeRef,
// the binary.LittleEndian calls) and then exercises every sanitizer shape.
package bat

import (
	"encoding/binary"
	"errors"
)

var errRange = errors.New("field out of range")

type leafRef struct {
	offset  uint64
	byteLen uint64
}

type readerAt interface {
	ReadAt(p []byte, off int64) (int, error)
}

// decodeRef populates a leafRef from raw file bytes. It is not named
// Decode*, so nothing here earns program-wide trust: the fields come out
// tainted, and every later use must bound them (or be flagged).
func decodeRef(buf []byte) leafRef {
	return leafRef{
		offset:  binary.LittleEndian.Uint64(buf[0:]),
		byteLen: binary.LittleEndian.Uint64(buf[8:]),
	}
}

// loadUnchecked is the bug: ref.offset is attacker-controlled file bytes
// (stored by decodeRef) and goes into ReadAt unbounded.
func loadUnchecked(r readerAt, ref leafRef) ([]byte, error) {
	buf := make([]byte, 16)
	_, err := r.ReadAt(buf, int64(ref.offset)) // want `unchecked conversion int64\(ref\.offset\) of decoded uint64`
	return buf, err
}

// loadGuarded is the fix the fuzzer finding led to: compare against the
// file size before converting.
func loadGuarded(r readerAt, ref leafRef, size int64) ([]byte, error) {
	if ref.offset > uint64(size) {
		return nil, errRange
	}
	buf := make([]byte, 16)
	_, err := r.ReadAt(buf, int64(ref.offset))
	return buf, err
}

// loadWaived documents a bound established somewhere the analyzer cannot
// see; the directive is the auditable escape hatch.
func loadWaived(r readerAt, ref leafRef) ([]byte, error) {
	buf := make([]byte, 16)
	//batlint:ignore uintcast offset validated against file size by the caller's retry loop
	_, err := r.ReadAt(buf, int64(ref.offset))
	return buf, err
}

// decodeCount narrows a decoded length with no bound: a crafted header can
// make the count negative after conversion.
func decodeCount(buf []byte) int {
	return int(binary.LittleEndian.Uint64(buf)) // want `unchecked conversion int\(binary\.LittleEndian\.Uint64\(buf\)\) of decoded uint64`
}

// decodeCountGuarded bounds the uint64 before narrowing.
func decodeCountGuarded(buf []byte) (int, error) {
	cnt := binary.LittleEndian.Uint64(buf[:8])
	if cnt > uint64(len(buf))/12 {
		return 0, errRange
	}
	return int(cnt), nil
}

// decodeCountClamped bounds with the min builtin instead of a branch.
func decodeCountClamped(buf []byte) int {
	return int(min(binary.LittleEndian.Uint64(buf), 1<<20))
}

// headerLen converts a constant: the compiler checks that, not batlint.
func headerLen() int {
	const fixed uint64 = 48
	return int(fixed)
}

// widen goes the lossless direction and is never a finding.
func widen(n uint32) uint64 {
	return uint64(n)
}

// encoderSide narrows a locally computed accumulator that never touches
// decoded input: under taint tracking this is simply not suspicious (the
// shape the old analyzer forced waivers onto in codec.go).
func encoderSide(vals []uint64) []byte {
	var acc uint64
	out := make([]byte, 0, len(vals))
	for _, v := range vals {
		acc |= v
		out = append(out, byte(acc))
	}
	return out
}

// --- interprocedural shapes (summaries, not syntax) ---

// readOffset returns decoded input: its summary taints every caller's
// result.
func readOffset(buf []byte) uint64 {
	return binary.LittleEndian.Uint64(buf)
}

// useOffset narrows a helper's tainted result: same bug, one call deep.
func useOffset(buf []byte) int {
	return int(readOffset(buf)) // want `unchecked conversion int\(readOffset\(buf\)\) of decoded uint64`
}

// useOffsetBounded bounds the helper's result before narrowing.
func useOffsetBounded(buf []byte) int {
	off := readOffset(buf)
	if off > 1<<20 {
		return 0
	}
	return int(off)
}

// seekTo narrows its parameter unguarded: no finding here — the parameter
// itself is not decoded input — but its summary marks the parameter a
// sink, so callers that pass tainted values are flagged at the call site.
func seekTo(r readerAt, off uint64) ([]byte, error) {
	buf := make([]byte, 16)
	_, err := r.ReadAt(buf, int64(off))
	return buf, err
}

// seekDecoded hands decoded input straight to the narrowing helper.
func seekDecoded(r readerAt, buf []byte) ([]byte, error) {
	return seekTo(r, binary.LittleEndian.Uint64(buf)) // want `decoded uint64 .* flows unbounded into seekTo`
}

// seekChecked bounds the value before the helper narrows it.
func seekChecked(r readerAt, buf []byte, size int64) ([]byte, error) {
	off := binary.LittleEndian.Uint64(buf)
	if off > uint64(size) {
		return nil, errRange
	}
	return seekTo(r, off)
}

// validOffset is a validator: its summary records that it bounds its
// first parameter, so passing a value through it sanitizes the value at
// the call site.
func validOffset(off uint64, size int64) bool {
	return off < uint64(size)
}

// seekValidated launders the taint through the validator helper.
func seekValidated(r readerAt, buf []byte, size int64) ([]byte, error) {
	off := binary.LittleEndian.Uint64(buf)
	if !validOffset(off, size) {
		return nil, errRange
	}
	return seekTo(r, off)
}

// --- the Decode* program-wide trust rule ---

// header models the cross-function Decode rule: fields bounded against the
// file size in Decode are trusted for narrowing everywhere in the package.
type header struct {
	count  uint64 // bounded in Decode
	offset uint64 // bounded in Decode
	stride uint64 // never bounded in Decode
}

// Decode is the validation point the analyzer recognizes by name.
func Decode(buf []byte, size int64) (*header, error) {
	h := &header{
		count:  binary.LittleEndian.Uint64(buf[0:]),
		offset: binary.LittleEndian.Uint64(buf[8:]),
		stride: binary.LittleEndian.Uint64(buf[16:]),
	}
	if h.count > uint64(size) {
		return nil, errRange
	}
	if h.offset > uint64(size) {
		return nil, errRange
	}
	return h, nil
}

// useDecodedCount narrows a field Decode bounded: no finding, no waiver.
func useDecodedCount(h *header) int {
	return int(h.count)
}

// readDecodedOffset is the retired-waiver shape: offset was checked
// against the file size in Decode, so the conversion is safe here.
func readDecodedOffset(r readerAt, h *header) ([]byte, error) {
	buf := make([]byte, 16)
	_, err := r.ReadAt(buf, int64(h.offset))
	return buf, err
}

// useUncheckedStride narrows a field Decode never compared: still flagged.
func useUncheckedStride(h *header) int {
	return int(h.stride) // want `unchecked conversion int\(h\.stride\) of decoded uint64`
}

// validateStride bounds stride, but outside Decode: that establishes no
// package-wide trust, so useUncheckedStride above stays a finding.
func validateStride(h *header) bool {
	return h.stride < 4096
}
