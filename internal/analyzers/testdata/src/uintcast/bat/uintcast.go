// Package bat is a uintcast fixture reproducing the PR 2 offset-wrap panic
// shape: a decoded uint64 treelet offset converted to int64 without a
// bounds check wraps negative and faults the subsequent ReadAt.
package bat

import (
	"encoding/binary"
	"errors"
)

var errRange = errors.New("field out of range")

type leafRef struct {
	offset  uint64
	byteLen uint64
}

type readerAt interface {
	ReadAt(p []byte, off int64) (int, error)
}

// loadUnchecked is the bug: ref.offset is attacker-controlled file bytes.
func loadUnchecked(r readerAt, ref leafRef) ([]byte, error) {
	buf := make([]byte, 16)
	_, err := r.ReadAt(buf, int64(ref.offset)) // want `unchecked conversion int64\(ref\.offset\) of untrusted uint64`
	return buf, err
}

// loadGuarded is the fix the fuzzer finding led to: compare against the
// file size before converting.
func loadGuarded(r readerAt, ref leafRef, size int64) ([]byte, error) {
	if ref.offset > uint64(size) {
		return nil, errRange
	}
	buf := make([]byte, 16)
	_, err := r.ReadAt(buf, int64(ref.offset))
	return buf, err
}

// loadWaived documents a bound established elsewhere.
func loadWaived(r readerAt, ref leafRef) ([]byte, error) {
	buf := make([]byte, 16)
	//batlint:ignore uintcast offset validated against file size at Decode time
	_, err := r.ReadAt(buf, int64(ref.offset))
	return buf, err
}

// decodeCount narrows a decoded length with no bound: a crafted header can
// make the count negative after conversion.
func decodeCount(buf []byte) int {
	return int(binary.LittleEndian.Uint64(buf)) // want `unchecked conversion int\(binary\.LittleEndian\.Uint64\(buf\)\) of untrusted uint64`
}

// decodeCountGuarded bounds the uint64 before narrowing.
func decodeCountGuarded(buf []byte) (int, error) {
	cnt := binary.LittleEndian.Uint64(buf[:8])
	if cnt > uint64(len(buf))/12 {
		return 0, errRange
	}
	return int(cnt), nil
}

// headerLen converts a constant: the compiler checks that, not batlint.
func headerLen() int {
	const fixed uint64 = 48
	return int(fixed)
}

// widen goes the lossless direction and is never a finding.
func widen(n uint32) uint64 {
	return uint64(n)
}

// header models the cross-function Decode rule: fields bounded against the
// file size in Decode are trusted for narrowing everywhere in the package.
type header struct {
	count  uint64 // bounded in Decode
	offset uint64 // bounded in Decode
	stride uint64 // never bounded in Decode
}

// Decode is the validation point the analyzer recognizes by name.
func Decode(buf []byte, size int64) (*header, error) {
	h := &header{
		count:  binary.LittleEndian.Uint64(buf[0:]),
		offset: binary.LittleEndian.Uint64(buf[8:]),
		stride: binary.LittleEndian.Uint64(buf[16:]),
	}
	if h.count > uint64(size) {
		return nil, errRange
	}
	if h.offset > uint64(size) {
		return nil, errRange
	}
	return h, nil
}

// useDecodedCount narrows a field Decode bounded: no finding, no waiver.
func useDecodedCount(h *header) int {
	return int(h.count)
}

// readDecodedOffset is the retired-waiver shape: offset was checked
// against the file size in Decode, so the conversion is safe here.
func readDecodedOffset(r readerAt, h *header) ([]byte, error) {
	buf := make([]byte, 16)
	_, err := r.ReadAt(buf, int64(h.offset))
	return buf, err
}

// useUncheckedStride narrows a field Decode never compared: still flagged.
func useUncheckedStride(h *header) int {
	return int(h.stride) // want `unchecked conversion int\(h\.stride\) of untrusted uint64`
}

// validateStride bounds stride, but outside Decode: that establishes no
// package-wide trust, so useUncheckedStride above stays a finding.
func validateStride(h *header) bool {
	return h.stride < 4096
}
