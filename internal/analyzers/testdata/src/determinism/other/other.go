// Package other is outside the determinism scope: wall-clock reads and map
// iteration are fine here.
package other

import "time"

func Stamp() int64 { return time.Now().UnixNano() }

func Sum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}
