// Package bat is a determinism fixture: the BAT build-pipeline scope, where
// wall-clock reads and map-order iteration make output bytes run-dependent.
package bat

import (
	"sort"
	"time"
)

func stampNow() int64 {
	return time.Now().UnixNano() // want `time\.Now in the deterministic build pipeline`
}

func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want `time\.Since in the deterministic build pipeline`
}

// flatten feeds output bytes straight from map order.
func flatten(m map[uint64][]byte) []byte {
	var out []byte
	for _, v := range m { // want `map iteration in the deterministic build pipeline`
		out = append(out, v...)
	}
	return out
}

// flattenSorted is the approved idiom: collect the keys, sort them, range
// the sorted slice.
func flattenSorted(m map[uint64][]byte) []byte {
	var keys []uint64
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	var out []byte
	for _, k := range keys {
		out = append(out, m[k]...)
	}
	return out
}
