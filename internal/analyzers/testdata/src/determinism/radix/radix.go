// Package radix is in the determinism scope: the sort under the BAT build
// must be bit-reproducible, so math/rand is banned at the import.
package radix

import "math/rand" // want `import of math/rand in the deterministic build pipeline`

func shuffle(xs []uint64) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}
