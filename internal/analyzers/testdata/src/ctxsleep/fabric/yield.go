// Package fabric is the ctxsleep out-of-scope fixture: the real fabric
// package's scheduler-yield sleeps are exempt wholesale, so nothing here
// is flagged.
package fabric

import "time"

func yield() {
	time.Sleep(50 * time.Microsecond)
}
