// Package bat is a ctxsleep fixture: an in-scope package exercising the
// positive finding, the waiver path, and non-findings (a different Sleep,
// a timer-based wait).
package bat

import (
	gotime "time"
)

func backoff(d gotime.Duration) {
	gotime.Sleep(d) // want `bare time\.Sleep ignores cancellation`
}

func waived(d gotime.Duration) {
	gotime.Sleep(d) //batlint:ignore ctxsleep fixture: demonstrates an audited uninterruptible wait
}

// otherSleep is a local function that happens to be named Sleep: not the
// time package's, not flagged.
func otherSleep(d gotime.Duration) {}

func usesOtherSleep() {
	otherSleep(0)
}

// timerWait blocks on a timer channel — interruptible by adding a ctx case,
// so it is the approved shape and not flagged.
func timerWait(d gotime.Duration) {
	t := gotime.NewTimer(d)
	defer t.Stop()
	<-t.C
}
