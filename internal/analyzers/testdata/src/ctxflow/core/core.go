// Package core is the ctxflow fixture: functions that accept a
// context.Context and either thread it into their blocking callees
// (clean) or detach from the caller by substituting context.Background()
// or never consulting the context at all (findings).
package core

import (
	"context"

	"ctxflow/pfs"
)

// loadGood threads the caller's context into the blocking read.
func loadGood(ctx context.Context, p []byte) (int, error) {
	return pfs.ReadAtContext(ctx, p, 0)
}

// loadBackground checks its context once, then hands a fresh root context
// to the blocking read: the caller's cancellation never reaches the wait.
func loadBackground(ctx context.Context, p []byte) (int, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	return pfs.ReadAtContext(context.Background(), p, 0) // want `hands context\.Background to blocking ReadAtContext`
}

// loadDropped receives a context it never consults while its body blocks.
func loadDropped(ctx context.Context) { // want `loadDropped receives a context it never uses`
	pfs.Wait()
}

// spin has no context parameter; its summary marks it blocking because it
// transitively reaches pfs.
func spin() {
	pfs.Wait()
}

// loadTransitive blocks only through the local helper: catching it
// requires the interprocedural Blocking summary, not the callee's import
// path.
func loadTransitive(ctx context.Context) { // want `loadTransitive receives a context it never uses`
	spin()
}

// loadDetached documents a deliberate detach (warm-up readahead) with the
// auditable waiver.
//
//batlint:ignore ctxflow warm-up readahead is deliberately detached from the query's lifetime
func loadDetached(ctx context.Context) {
	pfs.Wait()
}

// pureCompute receives a context but never blocks: holding it unused is
// fine (interfaces force the parameter on non-blocking implementations).
func pureCompute(ctx context.Context, xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}

// rootCaller has no context parameter of its own, so starting from
// context.Background is the only choice: out of scope by construction.
func rootCaller(p []byte) (int, error) {
	return pfs.ReadAtContext(context.Background(), p, 0)
}

// blankCtx declares, visibly in its signature, that cancellation ends
// here: blank parameters are exempt.
func blankCtx(_ context.Context) {
	pfs.Wait()
}
