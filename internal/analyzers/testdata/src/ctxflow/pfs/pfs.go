// Package pfs is the blocking-leaf fixture for ctxflow: its import path
// has the "pfs" element, so calls into it count as blocking I/O the way
// the real storage layer does.
package pfs

import (
	"context"
	"time"
)

// ReadAtContext models the cancellation-aware read: it consults its
// context, so it is clean under ctxflow itself.
func ReadAtContext(ctx context.Context, p []byte, off int64) (int, error) {
	select {
	case <-ctx.Done():
		return 0, ctx.Err()
	default:
	}
	time.Sleep(time.Microsecond)
	return len(p), nil
}

// Wait models a legacy blocking call with no context parameter.
func Wait() {
	time.Sleep(time.Microsecond)
}
