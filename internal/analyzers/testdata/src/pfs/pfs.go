// Package pfs is a fixture stub mirroring the storage surface the
// fabricerr analyzer checks against.
package pfs

import "io"

// File stands in for a parallel-filesystem handle.
type File struct{}

func (f *File) ReadAt(p []byte, off int64) (int, error) { return 0, nil }
func (f *File) Close() error                            { return nil }

// Handle mirrors the real pfs.File interface, whose Close comes from an
// embedded io.Closer — the method object lives in package io, and only the
// receiver type marks it as a storage handle.
type Handle interface {
	io.Closer
	Size() int64
}

// Storage stands in for the dataset store.
type Storage struct{}

func (s *Storage) Open(name string) (*File, error) { return nil, nil }
func (s *Storage) Remove(name string) error        { return nil }
