// Package fabric is a fixture stub: it mirrors the error-returning surface
// of the real fabric package so the fabricerr analyzer tests resolve calls
// through a package whose import path ends in "fabric".
package fabric

// Comm stands in for a rank-to-rank communicator.
type Comm struct{}

func (c *Comm) Send(rank int, p []byte) error        { return nil }
func (c *Comm) Recv(rank int, p []byte) (int, error) { return 0, nil }
func (c *Comm) Close() error                         { return nil }

// Barrier is a package-level error-returning call site.
func Barrier(c *Comm) error { return nil }
