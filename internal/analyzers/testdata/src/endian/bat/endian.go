// Package bat is an endian fixture: its import path element "bat" puts it
// in the on-disk format scope, so every byte order but the literal
// binary.LittleEndian is a finding.
package bat

import (
	"encoding/binary"
	"io"
)

type header struct {
	Magic uint32
	Count uint64
}

// encodeLittle is the approved shape: direct LittleEndian methods.
func encodeLittle(buf []byte, h header) {
	binary.LittleEndian.PutUint32(buf, h.Magic)
	binary.LittleEndian.PutUint64(buf[4:], h.Count)
}

func encodeBig(buf []byte, h header) {
	binary.BigEndian.PutUint32(buf, h.Magic) // want `binary.BigEndian in an on-disk format package`
}

func encodeNative(buf []byte, h header) {
	binary.NativeEndian.PutUint64(buf, h.Count) // want `binary.NativeEndian in an on-disk format package`
}

// writeVar routes the byte order through a parameter: the declaration and
// the indirect Write are separate findings.
func writeVar(w io.Writer, order binary.ByteOrder, h header) error { // want `binary.ByteOrder declaration in an on-disk format package`
	return binary.Write(w, order, h) // want `binary.Write with a byte order that is not the literal binary.LittleEndian`
}

func writeLittle(w io.Writer, h header) error {
	return binary.Write(w, binary.LittleEndian, h)
}

func readBig(r io.Reader, h *header) error {
	return binary.Read(r, binary.BigEndian, h) // want `binary.BigEndian in an on-disk format package`
}

// decodeHostOrder shows the auditable escape hatch: the waiver on the line
// above suppresses the NativeEndian finding.
func decodeHostOrder(buf []byte) uint64 {
	//batlint:ignore endian test-only helper comparing decode against host order
	return binary.NativeEndian.Uint64(buf)
}
