// Package other is outside the endian scope (no format-package path
// element), so its BigEndian use is not a finding.
package other

import "encoding/binary"

// Checksum may legitimately use network byte order here.
func Checksum(buf []byte) uint32 {
	return binary.BigEndian.Uint32(buf)
}
