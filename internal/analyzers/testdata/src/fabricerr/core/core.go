// Package core is a fabricerr fixture: the "core" path element is in
// scope, and every way of dropping a fabric/pfs error is represented.
package core

import (
	"fabric"
	"pfs"
)

func bareCall(c *fabric.Comm, p []byte) {
	c.Send(0, p) // want `\*Comm\.Send returns an error that is silently dropped`
}

func barePackageLevel(c *fabric.Comm) {
	fabric.Barrier(c) // want `fabric\.Barrier returns an error that is silently dropped`
}

func blankAssign(f *pfs.File) {
	_ = f.Close() // want `error of \*File\.Close assigned to _`
}

func blankTuple(f *pfs.File, p []byte) int {
	n, _ := f.ReadAt(p, 0) // want `error of \*File\.ReadAt assigned to _`
	return n
}

func deferred(f *pfs.File) {
	defer f.Close() // want `defer \*File\.Close discards its error`
}

// bareEmbedded calls a Close that resolves to io.Closer through interface
// embedding: the receiver type, not the method's package, is what places
// it in scope.
func bareEmbedded(h pfs.Handle) {
	h.Close() // want `Handle\.Close returns an error that is silently dropped`
}

func goDropped(c *fabric.Comm, p []byte) {
	go c.Send(1, p) // want `go \*Comm\.Send discards its error`
}

// handled is the approved shape: every error consumed.
func handled(s *pfs.Storage, name string) error {
	f, err := s.Open(name)
	if err != nil {
		return err
	}
	return f.Close()
}

// waived documents why a particular drop cannot matter.
func waived(s *pfs.Storage, name string) {
	//batlint:ignore fabricerr best-effort cleanup on an already-failed path
	_ = s.Remove(name)
}

func localErr() error { return nil }

// bareLocal drops a non-fabric error: outside this analyzer's domain
// (errcheck territory), so no finding.
func bareLocal() {
	localErr()
}
