// Package core is a spanpair fixture: every way a span can leak (or
// legitimately not leak) against the obs stub.
package core

import (
	"errors"

	"obs"
)

var errFail = errors.New("fail")

func work() {}

// goodDefer is the canonical shape.
func goodDefer(col *obs.Collector) {
	sp := col.Start(0, "write")
	defer sp.End()
	work()
}

// goodExplicit ends the span on both the early-return and fall-through paths.
func goodExplicit(col *obs.Collector, fail bool) error {
	sp := col.Start(0, "agree")
	if fail {
		sp.End()
		return errFail
	}
	work()
	sp.End()
	return nil
}

// deferClosure ends the span inside a deferred closure.
func deferClosure(col *obs.Collector) {
	sp := col.Start(0, "build")
	defer func() {
		work()
		sp.End()
	}()
	work()
}

// leakyReturn loses the span on the error path.
func leakyReturn(col *obs.Collector, fail bool) error {
	sp := col.Start(0, "exchange")
	if fail {
		return errFail // want `return leaves obs span "exchange" \(started at line \d+\) unended`
	}
	sp.End()
	return nil
}

// discarded can never be ended at all.
func discarded(col *obs.Collector) {
	_ = col.Start(0, "noop") // want `obs span started and immediately discarded`
}

// fallsOffEnd only ends the span on one branch and then falls off the end.
func fallsOffEnd(col *obs.Collector, fail bool) {
	sp := col.Start(0, "flush") // want `obs span "flush" is not ended before the function returns`
	if fail {
		sp.End()
	}
}

// endsInLoop relies on a loop body that may run zero times.
func endsInLoop(col *obs.Collector, items []int) {
	sp := col.Start(0, "scan") // want `obs span "scan" is not ended before the function returns`
	for range items {
		sp.End()
	}
}

// returnInLoop leaks through an early return inside the loop body.
func returnInLoop(col *obs.Collector, items []int) error {
	sp := col.Start(0, "walk")
	for _, it := range items {
		if it < 0 {
			return errFail // want `return leaves obs span "walk"`
		}
	}
	sp.End()
	return nil
}

// switchClosed ends the span in every arm including default.
func switchClosed(col *obs.Collector, mode int) {
	sp := col.Start(0, "route")
	switch mode {
	case 0:
		sp.End()
	default:
		sp.End()
	}
}

// switchLeak has no default, so the fall-through arm leaves the span open.
func switchLeak(col *obs.Collector, mode int) {
	sp := col.Start(0, "leak") // want `obs span "leak" is not ended before the function returns`
	switch mode {
	case 0:
		sp.End()
	}
}

// handsOff returns the span: the caller owns the End, so no finding.
func handsOff(col *obs.Collector) *obs.Span {
	sp := col.Start(0, "handoff")
	return sp
}
