// Package analyzers holds the repo's custom static-analysis suite: seven
// checks that mechanically enforce invariants the pipeline otherwise relies
// on by convention — little-endian on-disk serialization, interprocedural
// taint tracking of decoded integers into narrowing conversions, a
// clock/rand/map-order-free BAT build, consumed fabric/pfs errors, paired
// obs spans, cancellation-aware sleeps (pfs.SleepContext over time.Sleep),
// and contexts threaded into blocking callees. cmd/batlint drives the
// suite; DESIGN.md §9 maps each analyzer to the bug class that motivated
// it, and §14 describes the interprocedural summary layer uintcast and
// ctxflow are built on. Findings are suppressed only by an auditable
// //batlint:ignore <analyzer> <justification> comment.
package analyzers

import (
	"go/ast"
	"go/types"
	"strings"

	"libbat/internal/analyzers/analysis"
)

// All returns the full suite in a stable order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{Endian, UintCast, Determinism, FabricErr, SpanPair, CtxSleep, CtxFlow}
}

// inScope reports whether a package import path contains any of elems as a
// '/'-separated path element. Matching on elements (not substrings) lets
// one rule cover both the real tree (libbat/internal/bat) and analysistest
// fixtures (uintcast/bat) without hard-coding the module path.
func inScope(path string, elems ...string) bool {
	for _, seg := range strings.Split(path, "/") {
		for _, e := range elems {
			if seg == e {
				return true
			}
		}
	}
	return false
}

// calleeFunc resolves the static callee of a call, or nil for indirect
// calls, conversions, and builtins.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// pkgPathOf returns the import path of the package an object belongs to
// ("" for builtins and objects in the universe scope).
func pkgPathOf(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path()
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}
