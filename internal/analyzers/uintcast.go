package analyzers

import (
	"libbat/internal/analyzers/analysis"
)

// UintCast flags unsanitized source→sink taint flows in the on-disk
// format packages: a uint64 that originates in decoded input (a
// binary.LittleEndian read, a varint, a ReadAt-filled buffer, a struct
// field such values were stored into, or the result of any function whose
// summary says it returns such a value) and reaches a narrowing
// conversion with no dominating bound anywhere along the call path. This
// is the exact shape of the offset-wrap panic the bat reader fuzzer found
// (a crafted treelet offset converted with int64(off) went negative and
// ReadAt faulted): the fix there — compare the uint64 against the file
// size before converting — is what the sanitizer recognition looks for.
//
// The tracking is interprocedural, built on the per-function summaries
// analysis.BuildProgram computes to fixpoint over call-graph SCCs:
//
//   - a helper that narrows its parameter unguarded makes callers the
//     sink (the finding lands on the tainted argument at the call site);
//   - a helper that returns decoded input unguarded taints its callers;
//   - a bound established anywhere along the path sanitizes: a dominating
//     <,>,<=,>= comparison on the value, a call passing it to a
//     validateX-style function whose summary shows it bounds that
//     parameter, the builtin min against a bounded operand, or masking
//     with &/% against a constant;
//   - a struct field relationally compared inside a Decode* function is
//     trusted program-wide — Decode is where the format packages validate
//     untrusted header fields against the file size before storing them.
//
// Values that never touch decoded input (encoder-side accumulators,
// locally computed offsets) are not flagged at all, so the former
// "encoder-side value" waivers are gone rather than justified.
var UintCast = &analysis.Analyzer{
	Name: "uintcast",
	Doc: "in format packages (bat, meta, particles, checksum), a uint64 tainted by decoded input " +
		"(binary.LittleEndian/varint reads, ReadAt-filled buffers, fields holding them, callees " +
		"returning them) must be bounds-checked — locally, in a validator, or at Decode time — " +
		"before it is narrowed to a signed or smaller integer, across function and package boundaries",
	Run: runUintCast,
}

func runUintCast(pass *analysis.Pass) error {
	if !inScope(pass.Pkg.Path(), formatPkgs...) {
		return nil
	}
	for _, ev := range pass.Prog.Events(pass.Pkg.Path()) {
		switch ev.Kind {
		case analysis.EventNarrow:
			pass.ReportRangef(ev.Pos, ev.End,
				"unchecked conversion %s(%s) of decoded uint64: values above %s's range wrap "+
					"(offset-wrap panic shape); bound it on some path from the decode, or waive with "+
					"//batlint:ignore uintcast <why>",
				ev.To, ev.Expr, ev.To)
		case analysis.EventCallSink:
			pass.ReportRangef(ev.Pos, ev.End,
				"decoded uint64 %q flows unbounded into %s, which narrows parameter %q without a "+
					"guard; bound the argument first or waive with //batlint:ignore uintcast <why>",
				ev.Expr, ev.Callee, ev.Param)
		}
	}
	return nil
}
