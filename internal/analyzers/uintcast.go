package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"libbat/internal/analyzers/analysis"
)

// UintCast flags unchecked narrowing conversions of untrusted decoded
// integers in the on-disk format packages: a non-constant uint64 (the type
// every length, count, and offset field decodes to) converted to a signed
// or narrower integer type without a preceding bounds comparison on the
// same expression inside the same top-level function. This is the exact
// shape of the offset-wrap panic the bat reader fuzzer found (a crafted
// treelet offset converted with int64(off) went negative and ReadAt
// faulted): the fix there — compare the uint64 against the file size
// before converting — is what the guard heuristic looks for.
//
// The guard detection is syntactic and local — any <, >, <=, >= comparison
// whose operand prints identically to the converted expression, earlier in
// the same function — plus one deliberate cross-function rule: a struct
// field compared in a Decode* function (Decode, DecodeCtx) is trusted
// everywhere in the package. Decode is where the format packages validate
// untrusted header fields against the file size before storing them, so a
// field that was bounds-checked there (File.NumParticles, leafRef.offset)
// is safe to narrow at query time without a waiver. Fields checked anywhere else, or
// never, still require a local guard or a //batlint:ignore uintcast
// waiver. Full taint-style tracking through arbitrary helpers remains a
// ROADMAP follow-up.
var UintCast = &analysis.Analyzer{
	Name: "uintcast",
	Doc: "in format packages (bat, meta, particles, checksum), converting a non-constant uint64 to a " +
		"signed or narrower integer requires a preceding bounds check on the same expression in the " +
		"same function, or on the same struct field in a Decode* function",
	Run: runUintCast,
}

func runUintCast(pass *analysis.Pass) error {
	if !inScope(pass.Pkg.Path(), formatPkgs...) {
		return nil
	}
	checked := decodeCheckedFields(pass)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			guards := collectGuards(fn.Body)
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) != 1 {
					return true
				}
				to, from, ok := narrowingUint64Conversion(pass.TypesInfo, call)
				if !ok {
					return true
				}
				arg := ast.Unparen(call.Args[0])
				src := types.ExprString(arg)
				if guardedBefore(guards, src, call.Pos()) {
					return true
				}
				if fld := fieldObject(pass.TypesInfo, arg); fld != nil && checked[fld] {
					return true // bounded against the file size in Decode
				}
				pass.Reportf(call.Pos(),
					"unchecked conversion %s(%s) of untrusted uint64 %q: values above %s's range wrap; "+
						"bound it first (offset-wrap panic shape) or waive with //batlint:ignore uintcast <why>",
					to, src, from, to)
				return true
			})
		}
	}
	return nil
}

// decodeCheckedFields collects every struct field that appears as a bare
// operand of a relational comparison inside a Decode* function (Decode,
// DecodeCtx) in this package. Those comparisons are the format layer's
// validation of untrusted on-disk values (typically against the file
// size), so the fields they bound are trusted for narrowing conversions
// package-wide.
func decodeCheckedFields(pass *analysis.Pass) map[types.Object]bool {
	checked := map[types.Object]bool{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !strings.HasPrefix(fn.Name.Name, "Decode") {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				b, ok := n.(*ast.BinaryExpr)
				if !ok {
					return true
				}
				switch b.Op {
				case token.LSS, token.GTR, token.LEQ, token.GEQ:
					for _, operand := range [2]ast.Expr{b.X, b.Y} {
						if fld := fieldObject(pass.TypesInfo, ast.Unparen(operand)); fld != nil {
							checked[fld] = true
						}
					}
				}
				return true
			})
		}
	}
	return checked
}

// fieldObject resolves expr to the struct field it selects, or nil when
// expr is not a plain field selector.
func fieldObject(info *types.Info, expr ast.Expr) types.Object {
	sel, ok := expr.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	return s.Obj()
}

// narrowingUint64Conversion reports whether call converts a non-constant
// uint64 expression to an integer type that cannot represent every uint64,
// returning the destination and source type names.
func narrowingUint64Conversion(info *types.Info, call *ast.CallExpr) (to, from string, ok bool) {
	tv, isConv := info.Types[call.Fun]
	if !isConv || !tv.IsType() {
		return "", "", false
	}
	dst, ok := tv.Type.Underlying().(*types.Basic)
	if !ok || dst.Info()&types.IsInteger == 0 {
		return "", "", false
	}
	switch dst.Kind() {
	case types.Uint64, types.Uintptr:
		return "", "", false // lossless (uintptr narrowing is the mmap layer's concern)
	}
	av := info.Types[call.Args[0]]
	if av.Value != nil {
		return "", "", false // constants are checked by the compiler
	}
	src, ok := av.Type.Underlying().(*types.Basic)
	if !ok || src.Kind() != types.Uint64 {
		return "", "", false
	}
	return dst.String(), src.String(), true
}

// guard is one relational comparison: the printed form of each operand and
// where it occurs.
type guard struct {
	operands [2]string
	pos      token.Pos
}

// collectGuards gathers every <, >, <=, >= comparison in body.
func collectGuards(body *ast.BlockStmt) []guard {
	var gs []guard
	ast.Inspect(body, func(n ast.Node) bool {
		b, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch b.Op {
		case token.LSS, token.GTR, token.LEQ, token.GEQ:
			gs = append(gs, guard{
				operands: [2]string{
					types.ExprString(ast.Unparen(b.X)),
					types.ExprString(ast.Unparen(b.Y)),
				},
				pos: b.Pos(),
			})
		}
		return true
	})
	return gs
}

// guardedBefore reports whether some comparison mentioning src (by printed
// form) occurs before pos.
func guardedBefore(gs []guard, src string, pos token.Pos) bool {
	for _, g := range gs {
		if g.pos < pos && (g.operands[0] == src || g.operands[1] == src) {
			return true
		}
	}
	return false
}
