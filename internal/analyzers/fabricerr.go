package analyzers

import (
	"go/ast"
	"go/types"

	"libbat/internal/analyzers/analysis"
)

// fabricErrPkgs is where dropped fabric/pfs errors are collective poison:
// the write/read pipelines (core), the layout builder they drive (bat),
// and the CLIs (cmd/*). An unchecked storage or fabric error there either
// corrupts a dataset silently or desynchronizes the error-agreement
// collective that DESIGN.md §7 builds the fault-tolerance story on.
var fabricErrPkgs = []string{"core", "bat", "cmd"}

// FabricErr requires every error returned by a fabric.* or pfs.* call in
// those packages to be consumed: not dropped as a bare statement, not
// discarded with `_ =`, and not thrown away by defer/go. Cleanup-path
// closes whose error genuinely cannot matter take a
// //batlint:ignore fabricerr waiver stating why.
var FabricErr = &analysis.Analyzer{
	Name: "fabricerr",
	Doc: "in core, bat, and cmd/*, every error-returning fabric.*/pfs.* call must have its error " +
		"consumed: no bare calls, no _ = discards, no defer/go drops",
	Run: runFabricErr,
}

func runFabricErr(pass *analysis.Pass) error {
	if !inScope(pass.Pkg.Path(), fabricErrPkgs...) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					if name, ok := fabricErrCall(pass.TypesInfo, call); ok {
						pass.Reportf(n.Pos(),
							"%s returns an error that is silently dropped: a lost fabric/pfs error corrupts the collective; handle it or waive with //batlint:ignore fabricerr <why>", name)
					}
				}
			case *ast.DeferStmt:
				if name, ok := fabricErrCall(pass.TypesInfo, n.Call); ok {
					pass.Reportf(n.Pos(),
						"defer %s discards its error: close/cleanup failures vanish; capture it (named return) or waive with //batlint:ignore fabricerr <why>", name)
				}
			case *ast.GoStmt:
				if name, ok := fabricErrCall(pass.TypesInfo, n.Call); ok {
					pass.Reportf(n.Pos(),
						"go %s discards its error: route it back through a channel or errgroup-style collector", name)
				}
			case *ast.AssignStmt:
				checkBlankErrAssign(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkBlankErrAssign flags `_ = call()` (and multi-value forms) where the
// blank identifier lands on the error result of a fabric/pfs call.
func checkBlankErrAssign(pass *analysis.Pass, asg *ast.AssignStmt) {
	if len(asg.Rhs) != 1 {
		return
	}
	call, ok := asg.Rhs[0].(*ast.CallExpr)
	if !ok {
		return
	}
	name, ok := fabricErrCall(pass.TypesInfo, call)
	if !ok {
		return
	}
	sig, ok := pass.TypesInfo.Types[call].Type.(*types.Tuple)
	if !ok {
		// Single result: the call's type is the error itself.
		if len(asg.Lhs) == 1 && isBlank(asg.Lhs[0]) {
			pass.Reportf(asg.Pos(), "error of %s assigned to _: handle it or waive with //batlint:ignore fabricerr <why>", name)
		}
		return
	}
	for i := 0; i < sig.Len() && i < len(asg.Lhs); i++ {
		if isErrorType(sig.At(i).Type()) && isBlank(asg.Lhs[i]) {
			pass.Reportf(asg.Pos(), "error of %s assigned to _: handle it or waive with //batlint:ignore fabricerr <why>", name)
		}
	}
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

// fabricErrCall reports whether call statically resolves to a fabric or
// pfs function (package-level or method) with an error among its results,
// returning a human-readable callee name. A method counts when either the
// method itself or the receiver's declared type lives in fabric/pfs: the
// pfs.File interface embeds io.Closer, so f.Close() resolves to io's Close
// and only the receiver type betrays that it is a storage handle.
func fabricErrCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return "", false // builtins and universe methods (error.Error)
	}
	name := fn.Pkg().Name() + "." + fn.Name()
	scoped := inScope(pkgPathOf(fn), "fabric", "pfs")
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if s, ok := info.Selections[sel]; ok {
			name = typeShortName(s.Recv()) + "." + fn.Name()
			if named := namedOf(s.Recv()); named != nil && named.Obj().Pkg() != nil &&
				inScope(named.Obj().Pkg().Path(), "fabric", "pfs") {
				scoped = true
			}
		}
	}
	if !scoped {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return "", false
	}
	hasErr := false
	for i := 0; i < sig.Results().Len(); i++ {
		if isErrorType(sig.Results().At(i).Type()) {
			hasErr = true
		}
	}
	if !hasErr {
		return "", false
	}
	return name, true
}

// namedOf unwraps a pointer and returns the named type underneath, if any.
func namedOf(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// typeShortName renders a receiver type compactly (File, *Comm, Storage).
func typeShortName(t types.Type) string {
	return types.TypeString(t, func(p *types.Package) string { return "" })
}
