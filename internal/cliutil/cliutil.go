// Package cliutil holds small helpers shared by the command-line tools.
package cliutil

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseSize parses a human byte size such as "8MB", "512KB", "1.5GB", or a
// plain byte count.
func ParseSize(s string) (int64, error) {
	mul := int64(1)
	up := strings.ToUpper(strings.TrimSpace(s))
	switch {
	case strings.HasSuffix(up, "GB"):
		mul, up = 1<<30, strings.TrimSuffix(up, "GB")
	case strings.HasSuffix(up, "MB"):
		mul, up = 1<<20, strings.TrimSuffix(up, "MB")
	case strings.HasSuffix(up, "KB"):
		mul, up = 1<<10, strings.TrimSuffix(up, "KB")
	case strings.HasSuffix(up, "B"):
		up = strings.TrimSuffix(up, "B")
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(up), 64)
	if err != nil {
		return 0, fmt.Errorf("invalid size %q", s)
	}
	if v < 0 {
		return 0, fmt.Errorf("negative size %q", s)
	}
	return int64(v * float64(mul)), nil
}

// ParseBounds parses a comma-separated list of non-negative error bounds
// ("1e-3" or "1e-3,0,2.5e-2") for the -error-bound style flags.
func ParseBounds(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	out := make([]float64, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("invalid error bound %q", p)
		}
		if v < 0 || v != v || v > 1e308 {
			return nil, fmt.Errorf("error bound %q must be finite and >= 0", p)
		}
		out[i] = v
	}
	return out, nil
}

// FormatSize renders a byte count with a binary unit suffix.
func FormatSize(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.1fGB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(b)/(1<<10))
	}
	return fmt.Sprintf("%dB", b)
}
