package cliutil

import (
	"fmt"
	"os"

	"libbat/internal/obs"
)

// ObsFlags carries the -stats/-trace output paths shared by the CLIs.
type ObsFlags struct {
	StatsPath string
	TracePath string
}

// Collector returns a collector when either output is requested, nil
// otherwise (telemetry disabled).
func (f ObsFlags) Collector() *obs.Collector {
	if f.StatsPath == "" && f.TracePath == "" {
		return nil
	}
	return obs.New()
}

// Dump writes the requested stats/trace files from the collector. It is a
// no-op when col is nil.
func (f ObsFlags) Dump(col *obs.Collector) error {
	if col == nil {
		return nil
	}
	write := func(path string, fn func(*os.File) error) error {
		if path == "" {
			return nil
		}
		fh, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := fn(fh); err != nil {
			fh.Close()
			return err
		}
		return fh.Close()
	}
	if err := write(f.StatsPath, func(fh *os.File) error { return col.WriteJSON(fh) }); err != nil {
		return fmt.Errorf("writing stats: %w", err)
	}
	if err := write(f.TracePath, func(fh *os.File) error { return col.WriteChromeTrace(fh) }); err != nil {
		return fmt.Errorf("writing trace: %w", err)
	}
	return nil
}
