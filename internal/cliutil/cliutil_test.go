package cliutil

import "testing"

func TestParseSize(t *testing.T) {
	cases := map[string]int64{
		"8MB":   8 << 20,
		"512KB": 512 << 10,
		"1.5GB": 3 << 29,
		"1234":  1234,
		"100B":  100,
		" 2mb ": 2 << 20,
		"0":     0,
		"0.5MB": 1 << 19,
	}
	for in, want := range cases {
		got, err := ParseSize(in)
		if err != nil {
			t.Errorf("ParseSize(%q): %v", in, err)
			continue
		}
		if got != want {
			t.Errorf("ParseSize(%q) = %d, want %d", in, got, want)
		}
	}
	for _, bad := range []string{"", "abc", "12XB", "-5MB"} {
		if _, err := ParseSize(bad); err == nil {
			t.Errorf("ParseSize(%q) should error", bad)
		}
	}
}

func TestFormatSize(t *testing.T) {
	cases := map[int64]string{
		100:         "100B",
		2048:        "2.0KB",
		8 << 20:     "8.0MB",
		3 << 29:     "1.5GB",
		1<<20 + 512: "1.0MB",
	}
	for in, want := range cases {
		if got := FormatSize(in); got != want {
			t.Errorf("FormatSize(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	for _, b := range []int64{100, 2048, 8 << 20, 1 << 30} {
		s := FormatSize(b)
		got, err := ParseSize(s)
		if err != nil {
			t.Fatalf("round trip %d -> %q: %v", b, s, err)
		}
		if got != b {
			t.Errorf("round trip %d -> %q -> %d", b, s, got)
		}
	}
}
