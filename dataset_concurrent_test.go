package libbat

import (
	"fmt"
	"sync"
	"testing"

	"libbat/internal/leakcheck"
)

// TestDatasetConcurrentQuery: one Dataset, many goroutines, mixed query
// shapes. Before the sharded leaf cache this raced on Dataset.files (run
// under -race via check.sh); now every query must see the full count.
func TestDatasetConcurrentQuery(t *testing.T) {
	leakcheck.Check(t)
	store, total := writeTestDataset(t, "conc", 20*1024)
	ds, err := OpenDataset(store, "conc")
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	ds.SetQueryConfig(QueryConfig{Workers: 2})

	box := NewBox(V3(0.5, 0.5, 0), V3(3.5, 1.5, 1))
	wantBox, err := ds.Count(Query{Bounds: &box})
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 12
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var n int64
			var q Query
			want := int64(total)
			if g%2 == 1 {
				q = Query{Bounds: &box}
				want = wantBox
			}
			if err := ds.Query(q, func(Vec3, []float64) error {
				n++
				return nil
			}); err != nil {
				errs <- err
				return
			}
			if n != want {
				errs <- fmt.Errorf("goroutine %d visited %d, want %d", g, n, want)
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	st := ds.CacheStats()
	if st.Misses == 0 {
		t.Errorf("dataset cache recorded no misses: %+v", st)
	}
	if st.Hits == 0 {
		t.Errorf("dataset cache recorded no hits across %d rescans: %+v", goroutines, st)
	}
}

// TestDatasetCacheLimit: a total budget spread over leaves still yields
// correct counts while evicting.
func TestDatasetCacheLimit(t *testing.T) {
	store, total := writeTestDataset(t, "lim", 20*1024)
	ds, err := OpenDataset(store, "lim")
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	ds.SetCacheLimit(1) // effectively one treelet per shard per leaf

	for pass := 0; pass < 2; pass++ {
		n, err := ds.Count(Query{})
		if err != nil {
			t.Fatal(err)
		}
		if n != int64(total) {
			t.Fatalf("pass %d: counted %d, want %d", pass, n, total)
		}
	}
}
