package libbat

import (
	"math"
	"testing"
)

func analysisDataset(t *testing.T) (*Dataset, *ParticleSet) {
	t.Helper()
	store, _ := writeTestDataset(t, "an", 20*1024)
	ds, err := OpenDataset(store, "an")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ds.Close() })
	all, err := ds.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	return ds, all
}

func TestDensityGrid(t *testing.T) {
	ds, all := analysisDataset(t)
	grid, err := ds.DensityGrid(4, 2, 1, Query{})
	if err != nil {
		t.Fatal(err)
	}
	var sum int64
	for _, c := range grid {
		sum += c
	}
	if sum != int64(all.Len()) {
		t.Fatalf("grid sums to %d, want %d", sum, all.Len())
	}
	// The test dataset is a 4x2 grid of unit rank cubes with 800 each:
	// every voxel of a 4x2x1 grid should hold ~800.
	for i, c := range grid {
		if c < 700 || c > 900 {
			t.Errorf("voxel %d = %d, want ~800", i, c)
		}
	}
	if _, err := ds.DensityGrid(0, 1, 1, Query{}); err == nil {
		t.Error("invalid grid should error")
	}
}

func TestSummarize(t *testing.T) {
	ds, all := analysisDataset(t)
	s, err := ds.Summarize(0, Query{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Count != int64(all.Len()) {
		t.Fatalf("count = %d", s.Count)
	}
	// Brute force comparison.
	var sum float64
	min, max := math.Inf(1), math.Inf(-1)
	for _, v := range all.Attrs[0] {
		sum += v
		min = math.Min(min, v)
		max = math.Max(max, v)
	}
	mean := sum / float64(all.Len())
	if math.Abs(s.Mean-mean) > 1e-9*math.Abs(mean) {
		t.Errorf("mean %g != %g", s.Mean, mean)
	}
	if s.Min != min || s.Max != max {
		t.Errorf("range [%g,%g] != [%g,%g]", s.Min, s.Max, min, max)
	}
	var m2 float64
	for _, v := range all.Attrs[0] {
		m2 += (v - mean) * (v - mean)
	}
	want := math.Sqrt(m2 / float64(all.Len()))
	if math.Abs(s.Stddev-want) > 1e-9*want {
		t.Errorf("stddev %g != %g", s.Stddev, want)
	}
	// Filtered summary respects the filter.
	fs, err := ds.Summarize(0, Query{Filters: []AttrFilter{{Attr: 0, Min: 100, Max: 200}}})
	if err != nil {
		t.Fatal(err)
	}
	if fs.Min < 100 || fs.Max > 200 {
		t.Errorf("filtered range [%g,%g] escapes filter", fs.Min, fs.Max)
	}
	if _, err := ds.Summarize(9, Query{}); err == nil {
		t.Error("bad attr should error")
	}
	// Empty query result.
	es, err := ds.Summarize(0, Query{Filters: []AttrFilter{{Attr: 0, Min: 1e9, Max: 2e9}}})
	if err != nil || es.Count != 0 {
		t.Errorf("empty summary: %+v, %v", es, err)
	}
}

func TestRadialProfile(t *testing.T) {
	ds, all := analysisDataset(t)
	center := ds.Bounds().Center()
	radius := 2.5
	counts, means, err := ds.RadialProfile(center, radius, 5, 0, Query{})
	if err != nil {
		t.Fatal(err)
	}
	// Brute force.
	wantCounts := make([]int64, 5)
	wantSums := make([]float64, 5)
	for i := 0; i < all.Len(); i++ {
		r := all.Position(i).Sub(center).Length()
		if r >= radius {
			continue
		}
		b := int(r / radius * 5)
		if b >= 5 {
			b = 4
		}
		wantCounts[b]++
		wantSums[b] += all.Attrs[0][i]
	}
	for i := range counts {
		if counts[i] != wantCounts[i] {
			t.Fatalf("shell %d count %d != %d", i, counts[i], wantCounts[i])
		}
		if wantCounts[i] > 0 {
			want := wantSums[i] / float64(wantCounts[i])
			if math.Abs(means[i]-want) > 1e-9*math.Abs(want) {
				t.Fatalf("shell %d mean %g != %g", i, means[i], want)
			}
		} else if !math.IsNaN(means[i]) {
			t.Fatalf("empty shell %d mean should be NaN", i)
		}
	}
	// attr < 0 skips averaging (means all NaN).
	_, meansOnly, err := ds.RadialProfile(center, radius, 3, -1, Query{})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range meansOnly {
		if !math.IsNaN(m) {
			t.Error("attr<0 should produce NaN means")
		}
	}
	if _, _, err := ds.RadialProfile(center, 0, 3, 0, Query{}); err == nil {
		t.Error("zero radius should error")
	}
	if _, _, err := ds.RadialProfile(center, 1, 3, 99, Query{}); err == nil {
		t.Error("bad attr should error")
	}
}

func TestAnalysisOnLODSubset(t *testing.T) {
	// LOD analyses run on the representative subset: the coarse mean
	// should approximate the exact mean (stratified LOD sampling).
	ds, _ := analysisDataset(t)
	exact, err := ds.Summarize(0, Query{})
	if err != nil {
		t.Fatal(err)
	}
	coarse, err := ds.Summarize(0, Query{Quality: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if coarse.Count == 0 || coarse.Count >= exact.Count {
		t.Fatalf("coarse count %d of %d", coarse.Count, exact.Count)
	}
	if math.Abs(coarse.Mean-exact.Mean) > 0.15*math.Abs(exact.Mean) {
		t.Errorf("coarse mean %g far from exact %g", coarse.Mean, exact.Mean)
	}
}
