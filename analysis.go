package libbat

import (
	"fmt"
	"math"
)

// This file provides the common analysis passes the paper's visualization
// use cases need (§I, §V): density voxelization for volume-style rendering,
// per-attribute summary statistics, and radial profiles. All of them run
// through Dataset.Query, so they inherit spatial/attribute filtering and —
// via the progressive quality parameter — can trade exactness for latency
// on the LOD subset, exactly as the paper's viewer does.

// DensityGrid voxelizes the particles matched by q onto an nx*ny*nz grid
// over the dataset bounds, returning particle counts in x-major order
// (index = (iz*ny + iy)*nx + ix). It is the data backing a splatting/volume
// view of the particles.
func (d *Dataset) DensityGrid(nx, ny, nz int, q Query) ([]int64, error) {
	if nx < 1 || ny < 1 || nz < 1 {
		return nil, fmt.Errorf("libbat: invalid grid %dx%dx%d", nx, ny, nz)
	}
	b := d.Bounds()
	sz := b.Size()
	grid := make([]int64, nx*ny*nz)
	bin := func(v, lo, extent float64, n int) int {
		if extent <= 0 {
			return 0
		}
		i := int((v - lo) / extent * float64(n))
		if i < 0 {
			return 0
		}
		if i >= n {
			return n - 1
		}
		return i
	}
	err := d.Query(q, func(p Vec3, _ []float64) error {
		ix := bin(p.X, b.Lower.X, sz.X, nx)
		iy := bin(p.Y, b.Lower.Y, sz.Y, ny)
		iz := bin(p.Z, b.Lower.Z, sz.Z, nz)
		grid[(iz*ny+iy)*nx+ix]++
		return nil
	})
	return grid, err
}

// AttrSummary holds streaming statistics of one attribute over a query.
type AttrSummary struct {
	Count    int64
	Min, Max float64
	Mean     float64
	Stddev   float64
}

// Summarize computes count/min/max/mean/stddev of an attribute over the
// particles matched by q (Welford's algorithm, single pass).
func (d *Dataset) Summarize(attr int, q Query) (AttrSummary, error) {
	if attr < 0 || attr >= d.meta.Schema.NumAttrs() {
		return AttrSummary{}, fmt.Errorf("libbat: attribute %d out of range", attr)
	}
	s := AttrSummary{Min: math.Inf(1), Max: math.Inf(-1)}
	var m2 float64
	err := d.Query(q, func(_ Vec3, attrs []float64) error {
		v := attrs[attr]
		s.Count++
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
		delta := v - s.Mean
		s.Mean += delta / float64(s.Count)
		m2 += delta * (v - s.Mean)
		return nil
	})
	if err != nil {
		return AttrSummary{}, err
	}
	if s.Count == 0 {
		return AttrSummary{}, nil
	}
	if s.Count > 1 {
		s.Stddev = math.Sqrt(m2 / float64(s.Count))
	}
	return s, nil
}

// RadialProfile bins the particles matched by q by distance from center
// into `bins` equal-width shells out to radius, returning per-shell counts
// and the mean of the given attribute (NaN for empty shells; attr < 0
// skips attribute averaging). This is the standard first look at halos,
// plumes, and droplets.
func (d *Dataset) RadialProfile(center Vec3, radius float64, bins, attr int, q Query) (counts []int64, means []float64, err error) {
	if bins < 1 || radius <= 0 {
		return nil, nil, fmt.Errorf("libbat: invalid profile (bins=%d, radius=%g)", bins, radius)
	}
	if attr >= d.meta.Schema.NumAttrs() {
		return nil, nil, fmt.Errorf("libbat: attribute %d out of range", attr)
	}
	counts = make([]int64, bins)
	sums := make([]float64, bins)
	err = d.Query(q, func(p Vec3, attrs []float64) error {
		r := p.Sub(center).Length()
		if r >= radius {
			return nil
		}
		b := int(r / radius * float64(bins))
		if b >= bins {
			b = bins - 1
		}
		counts[b]++
		if attr >= 0 {
			sums[b] += attrs[attr]
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	means = make([]float64, bins)
	for i := range means {
		if counts[i] > 0 && attr >= 0 {
			means[i] = sums[i] / float64(counts[i])
		} else {
			means[i] = math.NaN()
		}
	}
	return counts, means, nil
}
