package libbat

import (
	"fmt"
	"testing"
)

// TestDatasetAccessTelemetry exercises the read-stack wiring end to end:
// a recorder attached to a Dataset must see per-treelet hits, a heatmap
// whose hottest cell localizes a clustered workload, named attribute
// touches, and a structured recent-query log.
func TestDatasetAccessTelemetry(t *testing.T) {
	store, _ := writeTestDataset(t, "acc", 20*1024)
	ds, err := OpenDataset(store, "acc")
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	rec := NewAccessRecorder("acc", ds.Bounds(), AccessOptions{GridBits: 3, RingSize: 16})
	ds.SetAccessRecorder(rec)
	if ds.AccessRecorder() != rec {
		t.Fatal("AccessRecorder getter mismatch")
	}

	// A clustered workload: repeated small boxes in the low-x corner of the
	// [0,4]x[0,2]x[0,1] domain, plus one filtered query.
	hot := NewBox(V3(0, 0, 0), V3(0.8, 0.8, 1))
	for i := 0; i < 5; i++ {
		if _, err := ds.Count(Query{Bounds: &hot}); err != nil {
			t.Fatal(err)
		}
	}
	if err := ds.QueryTagged("test:/points", Query{
		Bounds:  &hot,
		Filters: []AttrFilter{{Attr: 0, Min: 0, Max: 50}},
	}, func(Vec3, []float64) error { return nil }); err != nil {
		t.Fatal(err)
	}

	s := rec.Snapshot()
	if s.Queries != 6 || len(s.Recent) != 6 {
		t.Fatalf("queries = %d, recent = %d, want 6/6", s.Queries, len(s.Recent))
	}
	if s.TreeletHits == 0 || len(s.Treelets) == 0 {
		t.Fatalf("no treelet hits recorded: %+v", s)
	}
	// The hottest heatmap cell must lie in the clustered region.
	hotCells := s.HotCells(1)
	if len(hotCells) != 1 {
		t.Fatal("no heatmap mass")
	}
	cb := s.CellBox(hotCells[0].Cell)
	if !cb.Overlaps(hot) {
		t.Errorf("hottest cell box %v does not overlap the clustered region %v", cb, hot)
	}
	// Filters are logged by attribute name.
	if len(s.Attrs) != 1 || s.Attrs[0].Name != "temp" {
		t.Errorf("attr touches = %+v, want temp", s.Attrs)
	}
	// Source tags: five from Count (via Query → "dataset"), one custom.
	var tagged, dataset int
	for _, q := range s.Recent {
		switch q.Source {
		case "test:/points":
			tagged++
			if len(q.Filters) != 1 || q.Filters[0].Attr != "temp" {
				t.Errorf("tagged record filters = %+v", q.Filters)
			}
		case "dataset":
			dataset++
		}
		if q.Box == nil || q.Treelets == 0 || q.UnixNano == 0 {
			t.Errorf("incomplete query record: %+v", q)
		}
	}
	if tagged != 1 || dataset != 5 {
		t.Errorf("sources: %d tagged, %d dataset, want 1/5", tagged, dataset)
	}
	// The repeated identical queries after the first ran on a warm cache.
	last := s.Recent[len(s.Recent)-1]
	if last.CacheHitRatio != 1 {
		t.Errorf("warm-cache hit ratio = %g, want 1", last.CacheHitRatio)
	}
}

// TestCollectiveReadAccessRegistry checks the fabric/core wiring: a
// registry attached to the fabric collects per-rank serve records during a
// collective ReadQuery.
func TestCollectiveReadAccessRegistry(t *testing.T) {
	store, _ := writeTestDataset(t, "car", 30*1024)
	reg := NewAccessRegistry(AccessOptions{})
	f := NewFabric(4)
	f.SetAccessRegistry(reg)
	err := f.Run(func(c *Comm) error {
		lo := V3(float64(c.Rank()), 0, 0)
		box := NewBox(lo, lo.Add(V3(1, 2, 1)))
		got, _, err := ReadQuery(c, store, "car", Query{Bounds: &box})
		if err != nil {
			return err
		}
		if got.Len() == 0 {
			return fmt.Errorf("rank %d read nothing", c.Rank())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	rec := reg.Lookup("car")
	if rec == nil {
		t.Fatal("no recorder registered for dataset car")
	}
	s := rec.Snapshot()
	if s.TreeletHits == 0 || s.Queries == 0 {
		t.Fatalf("collective read recorded nothing: %+v", s)
	}
	for _, q := range s.Recent {
		if q.Source != "core.read" {
			t.Errorf("record source = %q, want core.read", q.Source)
		}
	}
}
