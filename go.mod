module libbat

go 1.22
