package libbat

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"libbat/internal/core"
	"libbat/internal/leakcheck"
	"libbat/internal/pfs"
)

// TestDatasetQueryCtxStalledLeaf: a Dataset over storage whose leaf reads
// stall indefinitely must return from QueryCtx within the caller's
// deadline, leak nothing, and serve complete results once the stall
// clears — the Dataset-level half of the acceptance criterion.
func TestDatasetQueryCtxStalledLeaf(t *testing.T) {
	leakcheck.Check(t)
	store, total := writeTestDataset(t, "stall", 20*1024)
	fau := pfs.NewFaulty(store, pfs.FaultConfig{})
	ds, err := OpenDataset(fau, "stall")
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	ds.SetQueryConfig(QueryConfig{Workers: 2})

	fau.StallReads(core.LeafFileName("stall", 0))
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	start := time.Now()
	err = ds.QueryCtx(ctx, Query{}, func(Vec3, []float64) error { return nil })
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("stalled QueryCtx = %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("stalled QueryCtx returned after %v, want bounded by the 200ms deadline", elapsed)
	}

	// Release the stall: the leaf slot must not be wedged or poisoned by
	// the canceled open.
	fau.ReleaseStalls()
	var n int64
	if err := ds.Query(Query{}, func(Vec3, []float64) error {
		n++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if n != int64(total) {
		t.Fatalf("post-release scan visited %d, want %d", n, total)
	}
}

// TestDatasetQueryCtxDetach: while one query is blocked opening a stalled
// leaf, a second query with a live context for the same leaf must share
// the singleflight slot, detach when its own deadline fires, and — after
// the stall clears — a third query must load the leaf fresh.
func TestDatasetQueryCtxDetach(t *testing.T) {
	leakcheck.Check(t)
	store, total := writeTestDataset(t, "detach", 20*1024)
	fau := pfs.NewFaulty(store, pfs.FaultConfig{})
	ds, err := OpenDataset(fau, "detach")
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()

	fau.StallReads(core.LeafFileName("detach", 0))
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(),
				time.Duration(50+i*25)*time.Millisecond)
			defer cancel()
			err := ds.QueryCtx(ctx, Query{}, func(Vec3, []float64) error { return nil })
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Errorf("waiter %d = %v, want DeadlineExceeded", i, err)
			}
		}(i)
	}
	wg.Wait()

	fau.ReleaseStalls()
	n, err := ds.Count(Query{})
	if err != nil || n != int64(total) {
		t.Fatalf("post-detach count = %d, %v; want %d, nil", n, err, total)
	}
}
